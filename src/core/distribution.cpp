#include "core/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.hpp"

namespace skelcl {

namespace {

// Largest-remainder apportionment.  The remainder rule, explicitly: every
// share starts from floor(count * w/total); the elements left over (always
// < shares) go one each to the largest fractional remainders, ties broken by
// lower position.  The result is proportional, deterministic, and sums
// exactly to count.  Shared by the flat per-device split and both levels of
// the node-aware split, so the two agree on rounding by construction.
std::vector<std::size_t> apportion(std::size_t count, const std::vector<double>& w) {
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  SKELCL_CHECK(total > 0.0,
               "all remaining devices have zero block weight; nothing can hold the data");
  std::vector<std::size_t> sizes(w.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t d = 0; d < w.size(); ++d) {
    const double exact = static_cast<double>(count) * w[d] / total;
    sizes[d] = static_cast<std::size_t>(exact);
    assigned += sizes[d];
    remainders.emplace_back(exact - std::floor(exact), d);
  }
  std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  // count*w/total can round *up* past the true share, so the floor sum may
  // exceed count for extreme counts/weights; take the excess back from the
  // smallest-remainder entries (the ones rounded up furthest).
  for (std::size_t i = remainders.size(); assigned > count;) {
    i = i == 0 ? remainders.size() - 1 : i - 1;
    std::size_t& s = sizes[remainders[i].second];
    if (s > 0) {
      --s;
      --assigned;
    }
  }
  for (std::size_t i = 0; assigned < count; ++i, ++assigned) {
    sizes[remainders[i % remainders.size()].second] += 1;
  }
  return sizes;
}

}  // namespace

Distribution Distribution::single(int device) {
  Distribution d;
  d.kind_ = Kind::Single;
  d.device_ = device;
  return d;
}

Distribution Distribution::block() {
  Distribution d;
  d.kind_ = Kind::Block;
  return d;
}

Distribution Distribution::block(std::vector<double> weights) {
  SKELCL_CHECK(!weights.empty(), "block weights must not be empty");
  double total = 0.0;
  for (double w : weights) {
    SKELCL_CHECK(w >= 0.0, "block weights must be non-negative");
    total += w;
  }
  SKELCL_CHECK(total > 0.0, "at least one block weight must be positive");
  Distribution d;
  d.kind_ = Kind::Block;
  d.weights_ = std::move(weights);
  return d;
}

Distribution Distribution::copy() {
  Distribution d;
  d.kind_ = Kind::Copy;
  return d;
}

Distribution Distribution::copy(std::string combineSource) {
  Distribution d;
  d.kind_ = Kind::Copy;
  d.combine_ = std::move(combineSource);
  return d;
}

std::vector<PartRange> Distribution::partition(std::size_t count, int deviceCount) const {
  SKELCL_CHECK(deviceCount > 0, "no devices");
  if (kind_ == Kind::Single) {
    SKELCL_CHECK(device_ >= 0 && device_ < deviceCount,
                 "single distribution names a device the system does not have");
  }
  // Weight validation is shared with the device-list overload below: the
  // weight table must cover every device id that will be consulted.
  std::vector<int> devices(static_cast<std::size_t>(deviceCount));
  std::iota(devices.begin(), devices.end(), 0);
  return partition(count, devices);
}

std::vector<PartRange> Distribution::partition(std::size_t count,
                                               const std::vector<int>& devices) const {
  SKELCL_CHECK(!devices.empty(), "no devices");
  std::vector<PartRange> parts;
  switch (kind_) {
    case Kind::None:
      throw UsageError("vector has no distribution; set one or let a skeleton default it");
    case Kind::Single: {
      SKELCL_CHECK(device_ >= 0, "single distribution names a negative device");
      // Fail over to the first surviving device when the named one is gone.
      const bool present = std::find(devices.begin(), devices.end(), device_) != devices.end();
      parts.push_back(PartRange{present ? device_ : devices.front(), 0, count});
      return parts;
    }
    case Kind::Copy: {
      for (const int d : devices) parts.push_back(PartRange{d, 0, count});
      return parts;
    }
    case Kind::Block: {
      // Weights are indexed by absolute device id; after a device is
      // blacklisted its weight entry simply stops being consulted, and the
      // remaining weights are renormalized over the surviving devices.
      std::vector<double> w;
      if (weights_.empty()) {
        w.assign(devices.size(), 1.0);
      } else {
        SKELCL_CHECK(weights_.size() > static_cast<std::size_t>(
                                           *std::max_element(devices.begin(), devices.end())),
                     "block weights must cover every device id (" +
                         std::to_string(weights_.size()) + " weights, device ids up to " +
                         std::to_string(*std::max_element(devices.begin(), devices.end())) + ")");
        for (const int d : devices) w.push_back(weights_[static_cast<std::size_t>(d)]);
      }
      const std::vector<std::size_t> sizes = apportion(count, w);

      // A device whose share rounds to zero gets *no* part — uniformly, not
      // just for explicit zero weights.  With count < deviceCount (tiny
      // inputs, or row-block matrices with rows < devices) the tail devices
      // previously received degenerate zero-size parts at offset == count,
      // which cost empty buffers/uploads and made the layout rules
      // inconsistent between weighted and unweighted blocks.
      std::size_t offset = 0;
      for (std::size_t i = 0; i < devices.size(); ++i) {
        const std::size_t s = sizes[i];
        if (s == 0) continue;
        parts.push_back(PartRange{devices[i], offset, s});
        offset += s;
      }
      // Postconditions (cheap, load-bearing for halo exchange): parts are
      // consecutive, disjoint, and exactly cover [0, count).
      SKELCL_CHECK(offset == count, "block partition does not cover the vector");
      for (std::size_t i = 1; i < parts.size(); ++i) {
        SKELCL_CHECK(parts[i].offset == parts[i - 1].offset + parts[i - 1].size,
                     "block partition produced non-contiguous parts");
      }
      return parts;
    }
  }
  return parts;
}

std::vector<PartRange> Distribution::partition(std::size_t count,
                                               const std::vector<int>& devices,
                                               const std::vector<int>& nodeOf) const {
  SKELCL_CHECK(!devices.empty(), "no devices");
  if (kind_ != Kind::Block) return partition(count, devices);

  // Per-device weights, exactly as in the flat overload.
  std::vector<double> w;
  if (weights_.empty()) {
    w.assign(devices.size(), 1.0);
  } else {
    SKELCL_CHECK(weights_.size() > static_cast<std::size_t>(
                                       *std::max_element(devices.begin(), devices.end())),
                 "block weights must cover every device id (" +
                     std::to_string(weights_.size()) + " weights, device ids up to " +
                     std::to_string(*std::max_element(devices.begin(), devices.end())) + ")");
    for (const int d : devices) w.push_back(weights_[static_cast<std::size_t>(d)]);
  }

  // Group the (ordered) devices into runs of one node each.  Flattened docl
  // configs list each node's devices consecutively; the alive subset keeps
  // that order, so runs are exactly the surviving per-node groups.
  struct Group {
    std::size_t first = 0;  ///< index into `devices`
    std::size_t size = 0;
    double weight = 0.0;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const int d = devices[i];
    SKELCL_CHECK(static_cast<std::size_t>(d) < nodeOf.size(),
                 "node map must cover every device id");
    const bool newGroup =
        groups.empty() ||
        nodeOf[static_cast<std::size_t>(d)] !=
            nodeOf[static_cast<std::size_t>(devices[groups.back().first])];
    if (newGroup) groups.push_back(Group{i, 0, 0.0});
    groups.back().size += 1;
    groups.back().weight += w[i];
  }

  // Level 1: apportion the vector across nodes; level 2: each node's share
  // across its member devices.  Same rounding rule at both levels.
  std::vector<double> nodeWeights;
  for (const Group& g : groups) nodeWeights.push_back(g.weight);
  const std::vector<std::size_t> nodeShares = apportion(count, nodeWeights);

  std::vector<PartRange> parts;
  std::size_t offset = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (nodeShares[g] == 0) continue;
    std::vector<double> memberW(w.begin() + static_cast<std::ptrdiff_t>(groups[g].first),
                                w.begin() + static_cast<std::ptrdiff_t>(groups[g].first +
                                                                        groups[g].size));
    const std::vector<std::size_t> memberSizes = apportion(nodeShares[g], memberW);
    for (std::size_t i = 0; i < memberSizes.size(); ++i) {
      if (memberSizes[i] == 0) continue;
      parts.push_back(PartRange{devices[groups[g].first + i], offset, memberSizes[i]});
      offset += memberSizes[i];
    }
  }
  SKELCL_CHECK(offset == count, "node-aware partition does not cover the vector");
  for (std::size_t i = 1; i < parts.size(); ++i) {
    SKELCL_CHECK(parts[i].offset == parts[i - 1].offset + parts[i - 1].size,
                 "node-aware partition produced non-contiguous parts");
  }
  return parts;
}

bool operator==(const Distribution& a, const Distribution& b) {
  if (a.kind_ != b.kind_) return false;
  if (a.kind_ == Distribution::Kind::Single && a.device_ != b.device_) return false;
  if (a.kind_ == Distribution::Kind::Block && a.weights_ != b.weights_) return false;
  if (a.kind_ == Distribution::Kind::Copy && a.combine_ != b.combine_) return false;
  return true;
}

std::string Distribution::describe() const {
  switch (kind_) {
    case Kind::None: return "none";
    case Kind::Single: return "single(" + std::to_string(device_) + ")";
    case Kind::Block: return weights_.empty() ? "block" : "block(weighted)";
    case Kind::Copy: return hasCombine() ? "copy(combine)" : "copy";
  }
  return "?";
}

}  // namespace skelcl
