#include "core/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.hpp"

namespace skelcl {

Distribution Distribution::single(int device) {
  Distribution d;
  d.kind_ = Kind::Single;
  d.device_ = device;
  return d;
}

Distribution Distribution::block() {
  Distribution d;
  d.kind_ = Kind::Block;
  return d;
}

Distribution Distribution::block(std::vector<double> weights) {
  SKELCL_CHECK(!weights.empty(), "block weights must not be empty");
  double total = 0.0;
  for (double w : weights) {
    SKELCL_CHECK(w >= 0.0, "block weights must be non-negative");
    total += w;
  }
  SKELCL_CHECK(total > 0.0, "at least one block weight must be positive");
  Distribution d;
  d.kind_ = Kind::Block;
  d.weights_ = std::move(weights);
  return d;
}

Distribution Distribution::copy() {
  Distribution d;
  d.kind_ = Kind::Copy;
  return d;
}

Distribution Distribution::copy(std::string combineSource) {
  Distribution d;
  d.kind_ = Kind::Copy;
  d.combine_ = std::move(combineSource);
  return d;
}

std::vector<PartRange> Distribution::partition(std::size_t count, int deviceCount) const {
  SKELCL_CHECK(deviceCount > 0, "no devices");
  std::vector<PartRange> parts;
  switch (kind_) {
    case Kind::None:
      throw UsageError("vector has no distribution; set one or let a skeleton default it");
    case Kind::Single: {
      SKELCL_CHECK(device_ >= 0 && device_ < deviceCount,
                   "single distribution names a device the system does not have");
      parts.push_back(PartRange{device_, 0, count});
      return parts;
    }
    case Kind::Copy: {
      for (int d = 0; d < deviceCount; ++d) parts.push_back(PartRange{d, 0, count});
      return parts;
    }
    case Kind::Block: {
      std::vector<double> w = weights_;
      if (w.empty()) w.assign(static_cast<std::size_t>(deviceCount), 1.0);
      SKELCL_CHECK(static_cast<int>(w.size()) == deviceCount,
                   "block weights must have one entry per device");
      const double total = std::accumulate(w.begin(), w.end(), 0.0);

      // Largest-remainder apportionment: proportional, sums exactly to count.
      std::vector<std::size_t> sizes(w.size(), 0);
      std::vector<std::pair<double, std::size_t>> remainders;
      std::size_t assigned = 0;
      for (std::size_t d = 0; d < w.size(); ++d) {
        const double exact = static_cast<double>(count) * w[d] / total;
        sizes[d] = static_cast<std::size_t>(exact);
        assigned += sizes[d];
        remainders.emplace_back(exact - std::floor(exact), d);
      }
      std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      for (std::size_t i = 0; assigned < count; ++i, ++assigned) {
        sizes[remainders[i % remainders.size()].second] += 1;
      }

      std::size_t offset = 0;
      for (int d = 0; d < deviceCount; ++d) {
        const std::size_t s = sizes[static_cast<std::size_t>(d)];
        if (s == 0 && weights_.empty() == false && w[static_cast<std::size_t>(d)] == 0.0) {
          continue;  // explicitly excluded device
        }
        parts.push_back(PartRange{d, offset, s});
        offset += s;
      }
      return parts;
    }
  }
  return parts;
}

bool operator==(const Distribution& a, const Distribution& b) {
  if (a.kind_ != b.kind_) return false;
  if (a.kind_ == Distribution::Kind::Single && a.device_ != b.device_) return false;
  if (a.kind_ == Distribution::Kind::Block && a.weights_ != b.weights_) return false;
  return true;
}

std::string Distribution::describe() const {
  switch (kind_) {
    case Kind::None: return "none";
    case Kind::Single: return "single(" + std::to_string(device_) + ")";
    case Kind::Block: return weights_.empty() ? "block" : "block(weighted)";
    case Kind::Copy: return hasCombine() ? "copy(combine)" : "copy";
  }
  return "?";
}

}  // namespace skelcl
