// skelcl::Vector<T> — the abstract vector data type (paper Section II-B).
//
// A Vector is a contiguous range of elements accessible by both the CPU and
// the GPUs.  Host<->device transfers are implicit and lazy; distributions
// (single/block/copy) describe its placement across multiple GPUs.
#pragma once

#include <initializer_list>
#include <type_traits>
#include <vector>

#include "core/detail/session.hpp"
#include "core/detail/vector_data.hpp"
#include "core/type_name.hpp"

namespace skelcl {

namespace detail {
template <typename T>
constexpr ElemKind elemKindOf() {
  if constexpr (std::is_same_v<T, float>) return ElemKind::F32;
  else if constexpr (std::is_same_v<T, double>) return ElemKind::F64;
  else if constexpr (std::is_same_v<T, std::int32_t>) return ElemKind::I32;
  else if constexpr (std::is_same_v<T, std::uint32_t>) return ElemKind::U32;
  else return ElemKind::Other;
}

/// Token produced by Vector::sizes(): when passed as an additional skeleton
/// argument, each device receives *its own* part size of the referenced
/// vector as an int (used as `events.sizes()` in the paper's Listing 3).
struct SizesToken {
  VectorData* data;
};

/// Token produced by Vector::offsets(): each device receives the element
/// offset of *its own* part of the referenced vector, so index-based user
/// functions can convert a global index into a part-local one.
struct OffsetsToken {
  VectorData* data;
};
}  // namespace detail

template <typename T>
class Vector {
  static_assert(std::is_trivially_copyable_v<T>, "vector elements must be trivially copyable");

 public:
  using value_type = T;

  /// A vector of `count` default (zero) elements.
  explicit Vector(std::size_t count)
      : data_(std::make_shared<detail::VectorData>(count, sizeof(T), detail::elemKindOf<T>())) {}

  /// A vector initialized from host data.
  Vector(std::initializer_list<T> init) : Vector(std::vector<T>(init)) {}
  explicit Vector(const std::vector<T>& init) : Vector(init.size()) {
    // A fresh vector's host copy is valid, so no session is needed here —
    // construction works before skelcl::init.
    T* dst = reinterpret_cast<T*>(data_->hostWrite(detail::Session::currentIfAny()));
    std::copy(init.begin(), init.end(), dst);
  }

  // Vectors share their payload when copied (cheap handle semantics, as in
  // SkelCL where skeleton results are moved around freely).
  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) noexcept = default;
  Vector& operator=(Vector&&) noexcept = default;

  std::size_t size() const { return data_->count(); }
  bool empty() const { return size() == 0; }

  // --- host access: triggers implicit (lazy) downloads -----------------------

  /// Read-only access; device copies stay valid.  The implicit download (if
  /// one is needed) runs under the thread's current session.
  const T* hostData() const {
    return reinterpret_cast<const T*>(data_->hostRead(detail::Session::currentIfAny()));
  }
  const T& operator[](std::size_t i) const { return hostData()[i]; }
  const T* begin() const { return hostData(); }
  const T* end() const { return hostData() + size(); }

  /// Mutable access; marks device copies stale.
  T* hostDataWrite() {
    return reinterpret_cast<T*>(data_->hostWrite(detail::Session::currentIfAny()));
  }
  T& operator[](std::size_t i) { return hostDataWrite()[i]; }
  T* begin() { return hostDataWrite(); }
  T* end() { return hostDataWrite() + size(); }

  std::vector<T> toStdVector() const { return std::vector<T>(begin(), end()); }

  // --- distribution -----------------------------------------------------------

  void setDistribution(Distribution dist) { data_->setDistribution(std::move(dist)); }
  const Distribution& distribution() const { return data_->distribution(); }

  /// Per-device part sizes as a skeleton argument token (paper Listing 3:
  /// `events.sizes()`).
  detail::SizesToken sizes() const { return detail::SizesToken{data_.get()}; }

  /// Per-device part element offsets as a skeleton argument token; together
  /// with sizes() this lets index-based user functions address part-local
  /// data (see the OSEM implementation).
  detail::OffsetsToken offsets() const { return detail::OffsetsToken{data_.get()}; }

  /// Tell SkelCL a kernel modified this vector through an additional
  /// argument (paper Listing 3 line 10).
  void dataOnDevicesModified() { data_->markDevicesModified(); }
  /// Tell SkelCL host code modified the data behind its back.
  void dataOnHostModified() { data_->markHostModified(); }

  // --- internals (skeleton implementation) ------------------------------------
  detail::VectorData& impl() const { return *data_; }

 private:
  std::shared_ptr<detail::VectorData> data_;
};

/// A virtual vector [0, 1, ..., n-1] usable as a skeleton's main input; no
/// storage, no transfers — work-items receive their global index (used as
/// `index` in the paper's OSEM implementation, Listing 3 line 9).
class IndexVector {
 public:
  explicit IndexVector(std::size_t count) : count_(count) {}

  std::size_t size() const { return count_; }
  void setDistribution(Distribution dist) { dist_ = std::move(dist); }
  const Distribution& distribution() const { return dist_; }

 private:
  std::size_t count_;
  Distribution dist_;
};

/// Marks an existing vector as a skeleton's output (written in place):
/// `zipUpdate(out(f), f, c)`.
template <typename T>
class Out {
 public:
  explicit Out(Vector<T>& target) : target_(&target) {}
  Vector<T>& target() const { return *target_; }

 private:
  Vector<T>* target_;
};

template <typename T>
Out<T> out(Vector<T>& v) {
  return Out<T>(v);
}

}  // namespace skelcl
