#include "core/type_name.hpp"

#include <unordered_map>

namespace skelcl::detail {

namespace {
struct Registered {
  std::string name;
  std::string definition;
};

std::unordered_map<std::type_index, Registered>& registry() {
  static std::unordered_map<std::type_index, Registered> map;
  return map;
}
}  // namespace

void registerKernelTypeImpl(std::type_index type, std::string name, std::string definition) {
  // Re-registration with the same name is allowed (helps tests); a different
  // name for the same type is a bug.
  auto it = registry().find(type);
  if (it != registry().end()) {
    SKELCL_CHECK(it->second.name == name,
                 "type already registered under the name '" + it->second.name + "'");
    it->second.definition = std::move(definition);
    return;
  }
  registry().emplace(type, Registered{std::move(name), std::move(definition)});
}

const std::string& kernelTypeNameImpl(std::type_index type) {
  const auto it = registry().find(type);
  SKELCL_CHECK(it != registry().end(),
               std::string("type not registered with registerKernelType: ") + type.name());
  return it->second.name;
}

const std::string& kernelTypeDefinitionImpl(std::type_index type) {
  const auto it = registry().find(type);
  SKELCL_CHECK(it != registry().end(),
               std::string("type not registered with registerKernelType: ") + type.name());
  return it->second.definition;
}

bool kernelTypeRegisteredImpl(std::type_index type) {
  return registry().count(type) > 0;
}

}  // namespace skelcl::detail
