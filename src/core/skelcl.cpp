#include "core/skelcl.hpp"

#include "core/detail/runtime.hpp"

namespace skelcl {

void init(sim::SystemConfig config) { detail::Runtime::init(std::move(config)); }

void terminate() { detail::Runtime::terminate(); }

int deviceCount() { return detail::Runtime::instance().deviceCount(); }

double simTimeSeconds() { return detail::Runtime::instance().system().hostNow(); }

void finish() {
  auto& rt = detail::Runtime::instance();
  for (int d = 0; d < rt.deviceCount(); ++d) rt.queue(d).finish();
}

void resetSimClock() { detail::Runtime::instance().resetClock(); }

const sim::Stats& simStats() { return detail::Runtime::instance().system().stats(); }

void setPartitionWeights(std::vector<double> weights) {
  detail::Runtime::instance().setPartitionWeights(std::move(weights));
}

void setFaultPlan(sim::FaultPlan plan) {
  detail::Runtime::instance().system().faults().install(std::move(plan));
}

int aliveDeviceCount() { return detail::Runtime::instance().aliveDeviceCount(); }

void blacklistDevice(int device) {
  detail::Runtime::instance().blacklistDevice(device, "blacklisted by the application");
}

}  // namespace skelcl
