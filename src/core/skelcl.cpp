#include "core/skelcl.hpp"

#include <mutex>

#include "core/detail/runtime.hpp"

namespace skelcl {

namespace {
std::unique_lock<std::recursive_mutex> sharedLock() {
  return std::unique_lock<std::recursive_mutex>(detail::Runtime::instance().shared().mutex());
}
}  // namespace

void init(sim::SystemConfig config) { detail::Runtime::init(std::move(config)); }

void terminate() { detail::Runtime::terminate(); }

int deviceCount() { return detail::Runtime::instance().deviceCount(); }

double simTimeSeconds() {
  auto lock = sharedLock();
  return detail::Runtime::instance().system().hostNow();
}

void finish() {
  auto lock = sharedLock();
  auto& rt = detail::Runtime::instance();
  for (int d = 0; d < rt.deviceCount(); ++d) rt.queue(d).finish();
}

void resetSimClock() {
  auto lock = sharedLock();
  detail::Runtime::instance().resetClock();
}

const sim::Stats& simStats() {
  auto lock = sharedLock();
  return detail::Runtime::instance().system().stats();
}

void setPartitionWeights(std::vector<double> weights) {
  detail::currentSession().setPartitionWeights(std::move(weights));
}

std::shared_ptr<Session> createSession(SessionOptions options) {
  return detail::Runtime::instance().createSession(std::move(options));
}

Session& currentSession() { return detail::Session::current(); }

void setFaultPlan(sim::FaultPlan plan) {
  auto lock = sharedLock();
  detail::Runtime::instance().system().faults().install(std::move(plan));
}

int aliveDeviceCount() {
  auto lock = sharedLock();
  return detail::Runtime::instance().aliveDeviceCount();
}

void blacklistDevice(int device) {
  auto lock = sharedLock();
  detail::Runtime::instance().blacklistDevice(device, "blacklisted by the application");
}

void setWatchdog(sim::WatchdogConfig config) {
  auto lock = sharedLock();
  detail::Runtime::instance().system().setWatchdog(config);
}

void setWatchdogEnabled(bool enabled) {
  auto lock = sharedLock();
  auto& system = detail::Runtime::instance().system();
  sim::WatchdogConfig config = system.watchdog();
  config.enabled = enabled;
  system.setWatchdog(config);
}

double deviceHealth(int device) {
  auto lock = sharedLock();
  const auto health = detail::Runtime::instance().shared().deviceHealth();
  SKELCL_CHECK(device >= 0 && static_cast<std::size_t>(device) < health.size(),
               "device index out of range");
  return health[static_cast<std::size_t>(device)];
}

int degradeCount(int device) {
  auto lock = sharedLock();
  return detail::Runtime::instance().shared().degradeCount(device);
}

}  // namespace skelcl
