// Mapping from host C++ element types to kernel-language type names.
//
// Arithmetic types map directly.  Struct types (e.g. the OSEM Event record)
// are registered once with their kernel-language definition; SkelCL prepends
// the definition to every generated program that uses the type, so host and
// device share one memory layout.
#pragma once

#include <cstdint>
#include <string>
#include <typeindex>

#include "base/error.hpp"

namespace skelcl {

namespace detail {
void registerKernelTypeImpl(std::type_index type, std::string name, std::string definition);
const std::string& kernelTypeNameImpl(std::type_index type);
const std::string& kernelTypeDefinitionImpl(std::type_index type);
bool kernelTypeRegisteredImpl(std::type_index type);
}  // namespace detail

/// Register a trivially-copyable struct for use in SkelCL vectors.
/// `definition` must be a kernel-language `typedef struct { ... } Name;`
/// whose layout matches the C++ type (the natural x86-64 layout rules).
template <typename T>
void registerKernelType(std::string name, std::string definition) {
  static_assert(std::is_trivially_copyable_v<T>, "kernel types must be trivially copyable");
  detail::registerKernelTypeImpl(std::type_index(typeid(T)), std::move(name),
                                 std::move(definition));
}

/// The kernel-language spelling of T ("float", "int", "Event", ...).
template <typename T>
const std::string& kernelTypeName() {
  using D = std::remove_cv_t<T>;
  if constexpr (std::is_same_v<D, float>) {
    static const std::string n = "float";
    return n;
  } else if constexpr (std::is_same_v<D, double>) {
    static const std::string n = "double";
    return n;
  } else if constexpr (std::is_same_v<D, std::int32_t>) {
    static const std::string n = "int";
    return n;
  } else if constexpr (std::is_same_v<D, std::uint32_t>) {
    static const std::string n = "uint";
    return n;
  } else {
    return detail::kernelTypeNameImpl(std::type_index(typeid(D)));
  }
}

/// The kernel-language definition to prepend for T ("" for builtins).
template <typename T>
const std::string& kernelTypeDefinition() {
  using D = std::remove_cv_t<T>;
  if constexpr (std::is_same_v<D, float> || std::is_same_v<D, double> ||
                std::is_same_v<D, std::int32_t> || std::is_same_v<D, std::uint32_t>) {
    static const std::string empty;
    return empty;
  } else {
    return detail::kernelTypeDefinitionImpl(std::type_index(typeid(D)));
  }
}

template <typename T>
constexpr bool isBuiltinKernelType() {
  using D = std::remove_cv_t<T>;
  return std::is_same_v<D, float> || std::is_same_v<D, double> ||
         std::is_same_v<D, std::int32_t> || std::is_same_v<D, std::uint32_t>;
}

}  // namespace skelcl
