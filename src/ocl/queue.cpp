#include "ocl/queue.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "kernelc/vm.hpp"
#include "sim/thread_pool.hpp"

namespace skelcl::ocl {

namespace {
std::atomic<CommandHook> g_command_hook{nullptr};

void reportCommand(const CommandInfo& info, const Event& event) {
  if (const CommandHook hook = g_command_hook.load(std::memory_order_relaxed)) {
    hook(info, event);
  }
}
}  // namespace

void setCommandHook(CommandHook hook) {
  g_command_hook.store(hook, std::memory_order_relaxed);
}

CommandQueue::CommandQueue(Context& context, Device& device, Api api)
    : context_(&context), device_(&device), api_(api) {
  SKELCL_CHECK(context.contains(device), "queue device is not part of the context");
}

CommandInfo CommandQueue::info(CommandInfo::Kind kind, std::uint64_t bytes,
                               std::uint64_t workItems, const char* kernelName) const {
  return {kind, device_->id(), bytes, workItems, kernelName, device_->spec().node};
}

double CommandQueue::earliestStart(std::span<const Event> deps) const {
  // A command can start once (a) the host has reached the enqueue point,
  // (b) all previous commands of this in-order queue are done, and (c) all
  // explicit event dependencies are done.  Dependency policy (one rule, no
  // silent time-0 defaults): an invalid (default-constructed) or failed
  // event as a dependency is a caller bug and throws; events from a
  // previous clock epoch (pre-resetClock) are *skipped* — their timestamps
  // belong to a clock that no longer exists, and the commands they marked
  // completed before the reset by definition.
  const auto& system = context_->platform().system();
  SKELCL_CHECK(last_end_ == 0.0 || watermark_epoch_ == system.clockEpoch(),
               "queue watermark is from a previous clock epoch: "
               "System::resetClock ran without CommandQueue::resetClock "
               "(use skelcl::resetSimClock, which resets both)");
  double earliest = std::max(system.hostNow(), last_end_);
  for (const Event& e : deps) {
    SKELCL_CHECK(e.valid(), "invalid (default-constructed) event passed as a dependency");
    SKELCL_CHECK(!e.failed(), "failed event passed as a dependency; the command "
                              "producing it never ran to completion");
    if (e.epoch() == system.clockEpoch()) {
      earliest = std::max(earliest, e.profilingEnd());
    }
  }
  return earliest;
}

CommandQueue::Admission CommandQueue::admitCommand(sim::CommandClass cls,
                                                   const CommandInfo& info,
                                                   double earliest) {
  auto& system = context_->platform().system();
  auto& faults = system.faults();
  if (!faults.active()) return {};
  const sim::FaultDecision decision = faults.onCommand(device_->id(), cls, earliest);
  if (decision.kind == sim::FaultDecision::Kind::None) return {};

  const double launchOverhead =
      (api_ == Api::Cuda ? device_->spec().launch_overhead_cuda_us
                         : device_->spec().launch_overhead_ocl_us) * 1e-6;

  if (decision.kind == sim::FaultDecision::Kind::Slow ||
      decision.kind == sim::FaultDecision::Kind::Hang) {
    const sim::WatchdogConfig& wd = system.watchdog();
    // Whether to abort is decided from the slack comparison alone (never
    // from clock values), so the clock-free reference model can mirror it.
    const bool abort =
        wd.enabled && (decision.kind == sim::FaultDecision::Kind::Hang ||
                       decision.slow_factor > wd.slackFactor);
    if (!abort) {
      if (decision.kind == sim::FaultDecision::Kind::Slow) {
        return {decision.slow_factor};  // tolerated straggler: just slower
      }
      // Unwatched hang: the device dangles for the full stall, then the
      // command runs.  Booking the stall first makes the real reservation
      // (and everything queued behind it) land after it.
      system.reserveStall(device_->id(), cls, wd.hangStallSeconds, earliest);
      return {};
    }
    // Watchdog abort: the deadline is the slack multiple of the command's
    // *nominal* (fault-free) duration, floored for very short commands.  The
    // resource is held until the deadline — the straggler burned real time —
    // and the command's data effect never runs.
    const double nominal = cls == sim::CommandClass::Transfer
                               ? system.nominalTransferSeconds(device_->id(), info.bytes)
                               : launchOverhead;
    const double deadline = std::max(wd.minDeadlineSeconds, wd.slackFactor * nominal);
    const auto span = system.reserveStall(device_->id(), cls, deadline, earliest);
    const Event event(span.start, span.end, system.clockEpoch(),
                      sim::status::WatchdogTimeout);
    noteCompletion(event, /*blocking=*/false);
    reportCommand(info, event);
    throw CommandError("device " + std::to_string(device_->id()) + " ('" +
                           device_->name() + "'): " + decision.what +
                           "; watchdog fired after " + std::to_string(deadline) + "s",
                       device_->id(), sim::status::WatchdogTimeout, event.profilingEnd(),
                       /*permanent=*/false);
  }

  Event event;
  if (decision.kind == sim::FaultDecision::Kind::Transient) {
    // The failed attempt occupies the resource like the real command would
    // (a dropped transfer still burned the wire; a faulted launch still held
    // the device); network timeouts extend the event past the reservation.
    sim::Timeline::Span span{};
    if (cls == sim::CommandClass::Transfer) {
      span = system.reserveTransfer(device_->id(), info.bytes, earliest);
    } else {
      const double overhead =
          (api_ == Api::Cuda ? device_->spec().launch_overhead_cuda_us
                             : device_->spec().launch_overhead_ocl_us) * 1e-6;
      span = system.reserveKernel(device_->id(), 0,
                                  info.workItems == 0 ? 1 : info.workItems,
                                  apiEfficiency(api_), overhead, earliest);
    }
    event = Event(span.start, span.end + decision.extra_delay_s, system.clockEpoch(),
                  decision.status);
  } else {
    // Device death: the command never executes; only the timeout (if any)
    // elapses before the failure surfaces.
    event = Event(earliest, earliest + decision.extra_delay_s, system.clockEpoch(),
                  decision.status);
  }
  noteCompletion(event, /*blocking=*/false);
  reportCommand(info, event);
  throw CommandError("device " + std::to_string(device_->id()) + " ('" + device_->name() +
                         "'): " + decision.what,
                     device_->id(), decision.status, event.profilingEnd(),
                     decision.kind == sim::FaultDecision::Kind::DeviceLost);
}

void CommandQueue::noteCompletion(const Event& event, bool blocking) {
  last_end_ = std::max(last_end_, event.profilingEnd());
  watermark_epoch_ = event.epoch();
  if (blocking) context_->platform().system().advanceHost(event.profilingEnd());
}

void CommandQueue::checkBufferRange(const Buffer& buffer, std::uint64_t offset,
                                    std::uint64_t bytes, const char* what) const {
  if (offset + bytes > buffer.size()) {
    throw UsageError(std::string(what) + ": range [" + std::to_string(offset) + ", " +
                     std::to_string(offset + bytes) + ") exceeds buffer size " +
                     std::to_string(buffer.size()));
  }
}

void CommandQueue::checkBufferDevice(const Buffer& buffer, const char* what) const {
  if (&buffer.device() != device_) {
    throw UsageError(std::string(what) + ": buffer lives on '" + buffer.device().name() +
                     "' but the queue drives '" + device_->name() + "'");
  }
}

Event CommandQueue::enqueueWriteBuffer(Buffer& dst, std::uint64_t offset,
                                       std::uint64_t bytes, const void* src, bool blocking,
                                       std::span<const Event> deps) {
  checkBufferRange(dst, offset, bytes, "enqueueWriteBuffer");
  checkBufferDevice(dst, "enqueueWriteBuffer");
  const double earliest = earliestStart(deps);
  const Admission adm = admitCommand(
      sim::CommandClass::Transfer,
      info(CommandInfo::Kind::Write, bytes, 0, nullptr), earliest);
  std::memcpy(dst.data() + offset, src, bytes);
  auto& system = context_->platform().system();
  const auto span = system.reserveTransfer(device_->id(), bytes, earliest, adm.timeScale);
  const Event event(span.start, span.end, system.clockEpoch());
  noteCompletion(event, blocking);
  reportCommand(info(CommandInfo::Kind::Write, bytes, 0, nullptr), event);
  return event;
}

Event CommandQueue::enqueueReadBuffer(const Buffer& src, std::uint64_t offset,
                                      std::uint64_t bytes, void* dst, bool blocking,
                                      std::span<const Event> deps) {
  checkBufferRange(src, offset, bytes, "enqueueReadBuffer");
  checkBufferDevice(src, "enqueueReadBuffer");
  const double earliest = earliestStart(deps);
  const Admission adm = admitCommand(
      sim::CommandClass::Transfer,
      info(CommandInfo::Kind::Read, bytes, 0, nullptr), earliest);
  std::memcpy(dst, src.data() + offset, bytes);
  auto& system = context_->platform().system();
  const auto span = system.reserveTransfer(device_->id(), bytes, earliest, adm.timeScale);
  const Event event(span.start, span.end, system.clockEpoch());
  noteCompletion(event, blocking);
  reportCommand(info(CommandInfo::Kind::Read, bytes, 0, nullptr), event);
  return event;
}

Event CommandQueue::enqueueCopyBuffer(const Buffer& src, Buffer& dst, std::uint64_t srcOffset,
                                      std::uint64_t dstOffset, std::uint64_t bytes,
                                      std::span<const Event> deps) {
  checkBufferRange(src, srcOffset, bytes, "enqueueCopyBuffer(src)");
  checkBufferRange(dst, dstOffset, bytes, "enqueueCopyBuffer(dst)");
  const double earliest = earliestStart(deps);
  const Admission adm = admitCommand(
      sim::CommandClass::Transfer,
      info(CommandInfo::Kind::Copy, bytes, 0, nullptr), earliest);
  std::memcpy(dst.data() + dstOffset, src.data() + srcOffset, bytes);

  auto& system = context_->platform().system();
  sim::Timeline::Span span{};
  if (&src.device() == &dst.device()) {
    // Intra-device copy: runs at device-memory speed, modeled as 20x the
    // host-link bandwidth.
    const double linkRate = 5.2e9;
    span = system.reserveKernel(src.device().id(), 0, 1, 1.0,
                                static_cast<double>(bytes) / (20.0 * linkRate), earliest,
                                adm.timeScale);
  } else {
    span = system.reservePeerTransfer(src.device().id(), dst.device().id(), bytes, earliest,
                                      adm.timeScale);
  }
  const Event event(span.start, span.end, system.clockEpoch());
  noteCompletion(event, /*blocking=*/false);
  reportCommand(info(CommandInfo::Kind::Copy, bytes, 0, nullptr), event);
  return event;
}

Event CommandQueue::enqueueFillBuffer(Buffer& dst, std::byte value, std::uint64_t offset,
                                      std::uint64_t bytes, std::span<const Event> deps) {
  checkBufferRange(dst, offset, bytes, "enqueueFillBuffer");
  checkBufferDevice(dst, "enqueueFillBuffer");
  const double earliest = earliestStart(deps);
  const Admission adm = admitCommand(
      sim::CommandClass::Transfer,
      info(CommandInfo::Kind::Fill, bytes, 0, nullptr), earliest);
  std::memset(dst.data() + offset, std::to_integer<int>(value), bytes);
  // Device-side fill: cheap, bounded by device memory bandwidth (modeled as
  // 20x link rate) plus one launch overhead.
  auto& system = context_->platform().system();
  const double overhead =
      (api_ == Api::Cuda ? device_->spec().launch_overhead_cuda_us
                         : device_->spec().launch_overhead_ocl_us) * 1e-6;
  const auto span = system.reserveKernel(
      device_->id(), 0, 1, 1.0, overhead + static_cast<double>(bytes) / (20.0 * 5.2e9),
      earliest, adm.timeScale);
  const Event event(span.start, span.end, system.clockEpoch());
  noteCompletion(event, /*blocking=*/false);
  reportCommand(info(CommandInfo::Kind::Fill, bytes, 0, nullptr), event);
  return event;
}

Event CommandQueue::enqueueNDRangeKernel(Kernel& kernel, std::uint64_t globalSize,
                                         std::uint64_t globalOffset,
                                         std::span<const Event> deps) {
  SKELCL_CHECK(globalSize > 0, "global work size must be positive");
  // VM execution below never advances the host clock or this queue's
  // watermark, so the start bound computed here is still valid for the
  // timeline reservation afterwards.
  const double earliest = earliestStart(deps);
  const Admission adm = admitCommand(
      sim::CommandClass::Kernel,
      info(CommandInfo::Kind::Kernel, 0, globalSize, kernel.name().c_str()),
      earliest);

  // Marshal arguments: buffers become VM memory regions, scalars pass through.
  const auto& fnArgs = kernel.args();
  std::vector<kc::MemRegion> regions;
  std::vector<kc::Slot> slots(fnArgs.size());
  for (std::size_t i = 0; i < fnArgs.size(); ++i) {
    const KernelArg& arg = fnArgs[i];
    switch (arg.kind) {
      case KernelArg::Kind::Unset:
        throw UsageError("kernel '" + kernel.name() + "': argument " + std::to_string(i) +
                         " was never set (CL_INVALID_KERNEL_ARGS)");
      case KernelArg::Kind::BufferArg: {
        checkBufferDevice(*arg.buffer, "enqueueNDRangeKernel");
        // const_cast: kernels may write; constness is tracked at the API
        // level by SkelCL's input/output distinction, not per buffer.
        auto* data = const_cast<std::byte*>(arg.buffer->data());
        regions.push_back(kc::MemRegion{data, arg.buffer->size()});
        kc::Ptr p;
        p.region = static_cast<std::int32_t>(regions.size());
        p.offset = 0;
        slots[i] = kc::Slot::fromPtr(p);
        break;
      }
      case KernelArg::Kind::ScalarArg:
        slots[i] = arg.scalar;
        break;
    }
  }

  // Execute all work items for real, counting VM instructions.
  const auto program = kernel.program().compiled();
  const int fnIndex = kernel.functionIndex();
  std::atomic<std::uint64_t> instructions{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  // Work-group-batched execution (tier 2): amortize instruction dispatch over
  // up to kBatchLanes consecutive work-items per runKernelBatch call.
  // runKernelBatch itself falls back to per-item execution when the kernel is
  // not batchable; SKELCL_KC_BATCH=0 forces the sequential loop for
  // debugging/benchmarking.
  const char* batchEnv = std::getenv("SKELCL_KC_BATCH");
  const bool useBatch = program->tier >= 2 &&
                        (batchEnv == nullptr || std::strcmp(batchEnv, "0") != 0);

  sim::ThreadPool::global().parallelFor(globalSize, [&](std::uint64_t begin, std::uint64_t end) {
    kc::Vm vm(*program, regions);
    try {
      if (useBatch) {
        for (std::uint64_t gid = begin; gid < end;) {
          const auto lanes = std::min<std::uint64_t>(
              end - gid, static_cast<std::uint64_t>(kc::Vm::kBatchLanes));
          vm.runKernelBatch(fnIndex, slots,
                            static_cast<std::int64_t>(globalOffset + gid),
                            static_cast<std::int64_t>(lanes),
                            static_cast<std::int64_t>(globalSize));
          gid += lanes;
        }
      } else {
        for (std::uint64_t gid = begin; gid < end; ++gid) {
          vm.runKernel(fnIndex, slots,
                       static_cast<std::int64_t>(globalOffset + gid),
                       static_cast<std::int64_t>(globalSize));
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) firstError = std::current_exception();
    }
    instructions.fetch_add(vm.instructionsExecuted());
  });
  if (firstError) std::rethrow_exception(firstError);

  // Account simulated time.
  auto& system = context_->platform().system();
  const double overhead =
      (api_ == Api::Cuda ? device_->spec().launch_overhead_cuda_us
                         : device_->spec().launch_overhead_ocl_us) * 1e-6;
  const auto span = system.reserveKernel(device_->id(), instructions.load(), globalSize,
                                         apiEfficiency(api_), overhead, earliest,
                                         adm.timeScale);
  const Event event(span.start, span.end, system.clockEpoch());
  noteCompletion(event, /*blocking=*/false);
  reportCommand(info(CommandInfo::Kind::Kernel, 0, globalSize, kernel.name().c_str()),
                event);
  return event;
}

void CommandQueue::finish() {
  context_->platform().system().advanceHost(last_end_);
}

}  // namespace skelcl::ocl
