// OpenCL-style platform and device objects over the simulated hardware.
//
// SkelCL consumes only the host-API semantics of OpenCL: platform/device
// discovery, contexts, in-order command queues, explicit buffers, runtime
// kernel compilation.  This layer implements those semantics over
// sim::System, executing kernels for real in the kernelc VM while accounting
// simulated time on the device/link timelines.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "sim/device_spec.hpp"
#include "sim/system.hpp"

namespace skelcl::ocl {

class Platform;

/// Which runtime API style drives a command queue.  The paper measures CUDA
/// about 20% faster than OpenCL for the same kernels; we model that as a
/// driver-efficiency factor (see DESIGN.md section 6).
enum class Api { OpenCL, Cuda };

constexpr double apiEfficiency(Api api) { return api == Api::Cuda ? 1.0 : 0.84; }

/// A command (transfer, kernel launch, allocation) failed — the simulated
/// analogue of a non-CL_SUCCESS return from an enqueue.  `permanent()`
/// distinguishes device death (blacklist and redistribute) from transient
/// faults (retry with backoff); `failTime()` is the simulated instant the
/// failure surfaced, so retry backoff can be charged to the clock.
class CommandError : public Error {
 public:
  CommandError(const std::string& what, int device, int status, double failTime,
               bool permanent)
      : Error(what), device_(device), status_(status), fail_time_(failTime),
        permanent_(permanent) {}

  int device() const { return device_; }
  int status() const { return status_; }
  double failTime() const { return fail_time_; }
  bool permanent() const { return permanent_; }

 private:
  int device_;
  int status_;
  double fail_time_;
  bool permanent_;
};

/// One compute device of the platform.  Tracks memory allocation against the
/// modeled capacity; exceeding it throws ResourceError just like a real
/// CL_MEM_OBJECT_ALLOCATION_FAILURE.
///
/// Devices are owned by shared_ptr (held by the Platform and by every Buffer
/// allocated on them) so that a buffer outliving the platform — e.g. a
/// skelcl::Vector destroyed after skelcl::terminate() — can still release
/// its accounting safely.
class Device : public std::enable_shared_from_this<Device> {
 public:
  Device(Platform& platform, int id);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  const sim::DeviceSpec& spec() const;
  const std::string& name() const { return spec().name; }
  sim::DeviceType type() const { return spec().type; }

  std::uint64_t memoryCapacity() const { return spec().mem_bytes; }
  std::uint64_t memoryAllocated() const { return allocated_.load(std::memory_order_relaxed); }

  Platform& platform() { return platform_; }

 private:
  friend class Buffer;
  void allocate(std::uint64_t bytes);
  void release(std::uint64_t bytes);

  Platform& platform_;
  int id_;
  // Atomic: Buffer destruction (release) may run off the shared device lock,
  // e.g. a Vector destroyed on a multi-tenant service's client thread.
  std::atomic<std::uint64_t> allocated_{0};
};

/// The (single) OpenCL platform of a simulated machine.
class Platform {
 public:
  explicit Platform(sim::SystemConfig config);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  int deviceCount() const { return static_cast<int>(devices_.size()); }
  Device& device(int index);
  std::vector<Device*> devices();

  sim::System& system() { return system_; }
  const sim::System& system() const { return system_; }

 private:
  sim::System system_;
  std::vector<std::shared_ptr<Device>> devices_;
};

}  // namespace skelcl::ocl
