#include "ocl/buffer.hpp"

#include <algorithm>

namespace skelcl::ocl {

Context::Context(std::vector<Device*> devices) : devices_(std::move(devices)) {
  SKELCL_CHECK(!devices_.empty(), "a context needs at least one device");
  platform_ = &devices_.front()->platform();
  for (Device* d : devices_) {
    SKELCL_CHECK(&d->platform() == platform_, "all context devices must share a platform");
  }
}

bool Context::contains(const Device& device) const {
  return std::find(devices_.begin(), devices_.end(), &device) != devices_.end();
}

Buffer::Buffer(Context& context, Device& device, std::uint64_t bytes)
    : device_(device.shared_from_this()) {
  SKELCL_CHECK(context.contains(device), "buffer device is not part of the context");
  SKELCL_CHECK(bytes > 0, "zero-sized buffers are not allowed (CL_INVALID_BUFFER_SIZE)");
  device.allocate(bytes);
  storage_.resize(bytes);
}

Buffer::~Buffer() {
  if (device_ != nullptr) device_->release(storage_.size());
}

Buffer::Buffer(Buffer&& other) noexcept
    : device_(std::move(other.device_)), storage_(std::move(other.storage_)) {
  other.device_ = nullptr;
  other.storage_.clear();
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    if (device_ != nullptr) device_->release(storage_.size());
    device_ = std::move(other.device_);
    storage_ = std::move(other.storage_);
    other.device_ = nullptr;
    other.storage_.clear();
  }
  return *this;
}

}  // namespace skelcl::ocl
