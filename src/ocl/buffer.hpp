// Contexts and device buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ocl/platform.hpp"

namespace skelcl::ocl {

/// A context groups the devices an application uses (as in OpenCL).
class Context {
 public:
  explicit Context(std::vector<Device*> devices);

  const std::vector<Device*>& devices() const { return devices_; }
  Platform& platform() { return *platform_; }
  bool contains(const Device& device) const;

 private:
  std::vector<Device*> devices_;
  Platform* platform_;
};

/// A memory object living in one device's memory.
///
/// Real cl_mem objects are context-level with implicit migration; SkelCL (and
/// every multi-GPU OpenCL program the paper discusses) allocates one buffer
/// per device and manages placement explicitly, so this layer models exactly
/// that common subset: a buffer has a device affinity fixed at creation.
class Buffer {
 public:
  Buffer(Context& context, Device& device, std::uint64_t bytes);
  ~Buffer();

  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::uint64_t size() const { return storage_.size(); }
  Device& device() const { return *device_; }
  bool valid() const { return device_ != nullptr; }

  /// Direct access to the simulated device memory.  Only the CommandQueue
  /// (and tests) should touch this; applications go through enqueue calls.
  std::byte* data() { return storage_.data(); }
  const std::byte* data() const { return storage_.data(); }

 private:
  std::shared_ptr<Device> device_;  ///< shared: see Device lifetime note
  std::vector<std::byte> storage_;
};

}  // namespace skelcl::ocl
