#include "ocl/platform.hpp"

#include <algorithm>

namespace skelcl::ocl {

Device::Device(Platform& platform, int id) : platform_(platform), id_(id) {}

const sim::DeviceSpec& Device::spec() const { return platform_.system().device(id_); }

void Device::allocate(std::uint64_t bytes) {
  const sim::FaultInjector& faults = platform_.system().faults();
  if (faults.deviceDead(id_)) {
    throw CommandError("device '" + name() + "': allocation on a dead device", id_,
                       sim::status::DeviceNotAvailable,
                       platform_.system().hostNow(), /*permanent=*/true);
  }
  // An injected memory cap models VRAM exhaustion below the spec capacity.
  const std::uint64_t capacity = std::min(memoryCapacity(), faults.memoryCap(id_));
  std::uint64_t cur = allocated_.load(std::memory_order_relaxed);
  do {
    if (cur + bytes > capacity) {
      throw ResourceError("device '" + name() + "': allocation of " + std::to_string(bytes) +
                          " bytes exceeds the remaining " +
                          std::to_string(capacity > cur ? capacity - cur : 0) +
                          " bytes of device memory (CL_MEM_OBJECT_ALLOCATION_FAILURE)");
    }
  } while (!allocated_.compare_exchange_weak(cur, cur + bytes, std::memory_order_relaxed));
}

void Device::release(std::uint64_t bytes) {
  std::uint64_t cur = allocated_.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = bytes > cur ? 0 : cur - bytes;
  } while (!allocated_.compare_exchange_weak(cur, next, std::memory_order_relaxed));
}

Platform::Platform(sim::SystemConfig config) : system_(std::move(config)) {
  for (int i = 0; i < system_.deviceCount(); ++i) {
    devices_.push_back(std::make_shared<Device>(*this, i));
  }
}

Device& Platform::device(int index) {
  SKELCL_CHECK(index >= 0 && index < deviceCount(), "device index out of range");
  return *devices_[static_cast<std::size_t>(index)];
}

std::vector<Device*> Platform::devices() {
  std::vector<Device*> out;
  out.reserve(devices_.size());
  for (auto& d : devices_) out.push_back(d.get());
  return out;
}

}  // namespace skelcl::ocl
