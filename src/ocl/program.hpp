// Runtime program compilation and kernel objects.
//
// SkelCL's central mechanism is merging user-defined function source strings
// into skeleton source and compiling the result *at runtime* through the
// OpenCL driver.  Here the "driver compiler" is src/kernelc; build errors are
// surfaced through a build log exactly like clBuildProgram does.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "kernelc/program.hpp"
#include "ocl/buffer.hpp"

namespace skelcl::ocl {

/// clBuildProgram failure: carries the driver build log.
class BuildError : public Error {
 public:
  BuildError(std::string log, const std::string& what)
      : Error("program build failed:\n" + what), log_(std::move(log)) {}
  const std::string& log() const { return log_; }

 private:
  std::string log_;
};

class Program {
 public:
  Program(Context& context, std::string source);

  /// Compile the source.  Throws BuildError on failure (the log is also
  /// retained and queryable, as with a real OpenCL implementation).
  /// Compilation is charged to the host clock once; the paper excludes
  /// compile time from its measurements, and benchmarks do the same by
  /// building before their timed sections.
  void build();

  bool built() const { return compiled_ != nullptr; }
  const std::string& buildLog() const { return build_log_; }
  const std::string& source() const { return source_; }
  double buildTimeSeconds() const { return build_time_s_; }

  std::shared_ptr<const kc::CompiledProgram> compiled() const { return compiled_; }
  Context& context() { return *context_; }

 private:
  Context* context_;
  std::string source_;
  std::string build_log_;
  std::shared_ptr<const kc::CompiledProgram> compiled_;
  double build_time_s_ = 0.0;
};

/// A kernel argument: a device buffer or a scalar value.
struct KernelArg {
  enum class Kind { Unset, BufferArg, ScalarArg };
  Kind kind = Kind::Unset;
  const Buffer* buffer = nullptr;
  kc::Slot scalar;
};

class Kernel {
 public:
  Kernel(Program& program, const std::string& name);

  const std::string& name() const { return name_; }
  int functionIndex() const { return function_index_; }
  std::size_t arity() const { return args_.size(); }
  Program& program() { return *program_; }

  /// Bind a buffer to a pointer parameter.
  void setArg(std::size_t index, const Buffer& buffer);
  /// Bind a scalar to a value parameter (converted to the parameter type).
  void setArg(std::size_t index, float value);
  void setArg(std::size_t index, double value);
  void setArg(std::size_t index, std::int32_t value);
  void setArg(std::size_t index, std::uint32_t value);
  void setArg(std::size_t index, std::int64_t value);
  void setArg(std::size_t index, std::uint64_t value);

  const std::vector<KernelArg>& args() const { return args_; }
  const kc::FunctionCode& code() const;

 private:
  void checkIndex(std::size_t index) const;
  void setScalar(std::size_t index, kc::Slot slot, bool isFloating);

  Program* program_;
  std::string name_;
  int function_index_;
  std::vector<KernelArg> args_;
};

}  // namespace skelcl::ocl
