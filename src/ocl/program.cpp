#include "ocl/program.hpp"

#include "kernelc/diagnostics.hpp"
#include "kernelc/types.hpp"

namespace skelcl::ocl {

Program::Program(Context& context, std::string source)
    : context_(&context), source_(std::move(source)) {}

void Program::build() {
  if (compiled_ != nullptr) return;  // idempotent, like clBuildProgram
  try {
    compiled_ = kc::compileProgram(source_);
  } catch (const kc::CompileError& e) {
    build_log_ = e.what();
    throw BuildError(build_log_, e.what());
  }
  build_log_ = "build succeeded";
  // Charge the runtime-compilation cost to the host clock (a fixed driver
  // overhead plus work proportional to program size).
  const std::uint64_t flops = 18'000'000 + compiled_->complexity * 20'000;
  const auto span = context_->platform().system().reserveHostCompute(0, flops);
  build_time_s_ = span.duration();
}

Kernel::Kernel(Program& program, const std::string& name) : program_(&program), name_(name) {
  SKELCL_CHECK(program.built(), "create kernels after building the program");
  function_index_ = program.compiled()->findKernel(name);
  if (function_index_ < 0) {
    throw UsageError("no kernel named '" + name + "' in program (CL_INVALID_KERNEL_NAME)");
  }
  args_.resize(code().paramTypes.size());
}

const kc::FunctionCode& Kernel::code() const {
  return program_->compiled()->functions[static_cast<std::size_t>(function_index_)];
}

void Kernel::checkIndex(std::size_t index) const {
  if (index >= args_.size()) {
    throw UsageError("kernel '" + name_ + "' has " + std::to_string(args_.size()) +
                     " parameters; argument index " + std::to_string(index) +
                     " is out of range (CL_INVALID_ARG_INDEX)");
  }
}

namespace {
bool isPointerParam(const kc::FunctionCode& fn, std::size_t index) {
  // Pointer TypeIds are interned after the scalar ids; anything that is not
  // one of the fixed scalar ids is a pointer (structs cannot be kernel
  // parameters by value).
  const kc::TypeId t = fn.paramTypes[index];
  return t > kc::types::Ulong;
}
}  // namespace

void Kernel::setArg(std::size_t index, const Buffer& buffer) {
  checkIndex(index);
  if (!isPointerParam(code(), index)) {
    throw UsageError("kernel '" + name_ + "': parameter " + std::to_string(index) +
                     " is a scalar, not a buffer (CL_INVALID_ARG_VALUE)");
  }
  args_[index].kind = KernelArg::Kind::BufferArg;
  args_[index].buffer = &buffer;
}

void Kernel::setScalar(std::size_t index, kc::Slot raw, bool wasFloating) {
  checkIndex(index);
  if (isPointerParam(code(), index)) {
    throw UsageError("kernel '" + name_ + "': parameter " + std::to_string(index) +
                     " is a buffer, not a scalar (CL_INVALID_ARG_VALUE)");
  }
  // Convert the host value exactly to the kernel parameter type so the VM
  // sees the same bit pattern a real device would.
  const kc::TypeId t = code().paramTypes[index];
  const double fval = wasFloating ? raw.f : static_cast<double>(raw.i);
  const std::int64_t ival = wasFloating ? static_cast<std::int64_t>(raw.f) : raw.i;
  kc::Slot slot;
  if (t == kc::types::Float) {
    slot = kc::Slot::fromFloat(static_cast<float>(fval));
  } else if (t == kc::types::Double) {
    slot = kc::Slot::fromFloat(fval);
  } else if (t == kc::types::Uint) {
    slot = kc::Slot::fromInt(static_cast<std::int64_t>(static_cast<std::uint32_t>(ival)));
  } else if (t == kc::types::Long || t == kc::types::Ulong) {
    slot = kc::Slot::fromInt(ival);  // full 64 bits (ulong: two's complement view)
  } else if (t == kc::types::Bool) {
    slot = kc::Slot::fromInt(wasFloating ? (fval != 0.0) : (ival != 0));
  } else {  // Int
    slot = kc::Slot::fromInt(static_cast<std::int32_t>(ival));
  }
  args_[index].kind = KernelArg::Kind::ScalarArg;
  args_[index].scalar = slot;
}

void Kernel::setArg(std::size_t index, float value) {
  setScalar(index, kc::Slot::fromFloat(value), /*wasFloating=*/true);
}

void Kernel::setArg(std::size_t index, double value) {
  setScalar(index, kc::Slot::fromFloat(value), /*wasFloating=*/true);
}

void Kernel::setArg(std::size_t index, std::int32_t value) {
  setScalar(index, kc::Slot::fromInt(value), /*wasFloating=*/false);
}

void Kernel::setArg(std::size_t index, std::uint32_t value) {
  setScalar(index, kc::Slot::fromInt(static_cast<std::int64_t>(value)),
            /*wasFloating=*/false);
}

void Kernel::setArg(std::size_t index, std::int64_t value) {
  setScalar(index, kc::Slot::fromInt(value), /*wasFloating=*/false);
}

void Kernel::setArg(std::size_t index, std::uint64_t value) {
  setScalar(index, kc::Slot::fromInt(static_cast<std::int64_t>(value)),
            /*wasFloating=*/false);
}

}  // namespace skelcl::ocl
