// In-order command queues with events and profiling.
//
// Commands execute eagerly (data is real), while their simulated start/end
// times come from the sim::System resource timelines.  Blocking calls and
// finish() advance the host clock, which is what benchmarks measure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ocl/program.hpp"

namespace skelcl::ocl {

/// Completion marker of an enqueued command, with profiling info
/// (clGetEventProfilingInfo equivalent).  `epoch` tags the event with the
/// simulated-clock generation it was produced under (System::clockEpoch);
/// events from before a resetClock carry timestamps of a dead clock and are
/// ignored as dependencies.  `status` is the CL-style execution status
/// (sim::status): 0 on success, negative when the command failed — failed
/// events are *valid* (the command happened) but poison dependents.
class Event {
 public:
  Event() = default;
  Event(double start, double end, std::uint64_t epoch = 0, int status = 0)
      : start_(start), end_(end), epoch_(epoch), status_(status), valid_(true) {}

  bool valid() const { return valid_; }
  double profilingStart() const { return start_; }
  double profilingEnd() const { return end_; }
  double duration() const { return end_ - start_; }
  std::uint64_t epoch() const { return epoch_; }
  int status() const { return status_; }
  /// The command this event marks failed (status < 0).
  bool failed() const { return status_ < 0; }

 private:
  double start_ = 0.0;
  double end_ = 0.0;
  std::uint64_t epoch_ = 0;
  int status_ = 0;
  bool valid_ = false;
};

/// One enqueued command, as reported to the observability hook.
struct CommandInfo {
  enum class Kind { Write, Read, Copy, Fill, Kernel };
  Kind kind = Kind::Kernel;
  int device = 0;                    ///< the queue's device
  std::uint64_t bytes = 0;           ///< transfer/fill size (0 for kernels)
  std::uint64_t workItems = 0;       ///< kernel global size (0 for transfers)
  const char* kernelName = nullptr;  ///< kernel launches only
  int node = 0;                      ///< cluster node of the device (docl)
};

/// Observability hook, invoked once per enqueued command with its completion
/// event.  Installed by the trace layer (core/detail/trace.cpp); the default
/// null hook costs one relaxed atomic load per enqueue.
using CommandHook = void (*)(const CommandInfo&, const Event&);
void setCommandHook(CommandHook hook);

class CommandQueue {
 public:
  /// An in-order queue for `device`.  `api` selects the runtime-efficiency
  /// profile (the CUDA shim reuses this queue with Api::Cuda).
  CommandQueue(Context& context, Device& device, Api api = Api::OpenCL);

  Device& device() { return *device_; }
  Api api() const { return api_; }

  /// Host -> device.
  Event enqueueWriteBuffer(Buffer& dst, std::uint64_t offset, std::uint64_t bytes,
                           const void* src, bool blocking = false,
                           std::span<const Event> deps = {});
  /// Device -> host.
  Event enqueueReadBuffer(const Buffer& src, std::uint64_t offset, std::uint64_t bytes,
                          void* dst, bool blocking = true,
                          std::span<const Event> deps = {});
  /// Device -> device (host-mediated on pre-peer-access hardware) or
  /// intra-device copy.
  Event enqueueCopyBuffer(const Buffer& src, Buffer& dst, std::uint64_t srcOffset,
                          std::uint64_t dstOffset, std::uint64_t bytes,
                          std::span<const Event> deps = {});
  /// Fill with a repeated byte (clEnqueueFillBuffer subset).
  Event enqueueFillBuffer(Buffer& dst, std::byte value, std::uint64_t offset,
                          std::uint64_t bytes, std::span<const Event> deps = {});
  /// Launch `globalSize` work-items of `kernel`, ids in
  /// [globalOffset, globalOffset + globalSize).
  Event enqueueNDRangeKernel(Kernel& kernel, std::uint64_t globalSize,
                             std::uint64_t globalOffset = 0,
                             std::span<const Event> deps = {});

  /// Block the host until every enqueued command has completed.
  void finish();
  /// The simulated completion time of the last enqueued command.
  double lastEventEnd() const { return last_end_; }
  /// Zero the in-order watermark; must accompany System::resetClock(),
  /// otherwise post-reset commands inherit pre-reset completion times
  /// (detail::Runtime::resetClock does both — prefer skelcl::resetSimClock).
  void resetClock() { last_end_ = 0.0; }

 private:
  double earliestStart(std::span<const Event> deps) const;
  /// CommandInfo for this queue's device, node id included.
  CommandInfo info(CommandInfo::Kind kind, std::uint64_t bytes, std::uint64_t workItems,
                   const char* kernelName) const;
  /// How an admitted command must be executed: injected slowdowns the
  /// watchdog tolerates stretch the timeline reservation by `timeScale`.
  struct Admission {
    double timeScale = 1.0;
  };
  /// Consult the system's fault injector before executing a command; on an
  /// injected fault, accounts the failed attempt on the timelines, reports
  /// it to the observability hook, and throws CommandError.  Slowdowns past
  /// the watchdog slack and hangs are aborted here, *before* the command's
  /// data effect runs (the buffers stay untouched, like a real aborted
  /// command).  `earliest` is the command's earliestStart(deps), computed
  /// once by the caller and shared with its own timeline reservation.
  Admission admitCommand(sim::CommandClass cls, const CommandInfo& info, double earliest);
  void noteCompletion(const Event& event, bool blocking);
  void checkBufferRange(const Buffer& buffer, std::uint64_t offset, std::uint64_t bytes,
                        const char* what) const;
  void checkBufferDevice(const Buffer& buffer, const char* what) const;

  Context* context_;
  Device* device_;
  Api api_;
  double last_end_ = 0.0;
  /// Clock epoch last_end_ belongs to; a stale value means System::resetClock
  /// ran without this queue's resetClock (caught by a SKELCL_CHECK).
  std::uint64_t watermark_epoch_ = 0;
};

}  // namespace skelcl::ocl
