// Umbrella header for the simulated OpenCL host API ("socl").
#pragma once

#include "ocl/buffer.hpp"    // IWYU pragma: export
#include "ocl/platform.hpp"  // IWYU pragma: export
#include "ocl/program.hpp"   // IWYU pragma: export
#include "ocl/queue.hpp"     // IWYU pragma: export
