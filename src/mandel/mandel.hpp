// Mandelbrot benchmark (the paper's conclusion reports LOC/performance
// results for it, citing the SkelCL introduction paper [6]).  Three
// implementations over the simulated GPUs: SkelCL (index-based map), raw
// OpenCL-style, and CUDA-style.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace skelcl::mandel {

struct MandelConfig {
  int width = 640;
  int height = 480;
  float minRe = -2.25f;
  float maxRe = 0.75f;
  float minIm = -1.25f;
  float maxIm = 1.25f;
  int maxIterations = 64;
};

struct MandelResult {
  std::vector<std::int32_t> iterations;  ///< width * height, row-major
  double simSeconds = 0.0;               ///< simulated time of the timed run
};

/// Sequential reference.
MandelResult mandelSeq(const MandelConfig& config);

/// SkelCL: one Map<int(Index)> skeleton.
MandelResult mandelSkelCL(const MandelConfig& config, int numGpus);

/// Hand-written against the simulated OpenCL host API.
MandelResult mandelOcl(const MandelConfig& config, int numGpus);

/// CUDA-style.
MandelResult mandelCuda(const MandelConfig& config, int numGpus);

/// The kernel-language escape-iteration function shared by all device
/// implementations.
const std::string& mandelIterateSource();

}  // namespace skelcl::mandel
