#include "mandel/mandel.hpp"

#include <string>

#include "core/skelcl.hpp"
#include "cuda/scuda.hpp"
#include "ocl/ocl.hpp"

namespace skelcl::mandel {

const std::string& mandelIterateSource() {
  static const std::string source = R"(
int mandel_iterate(float cre, float cim, int maxIter) {
  float re = 0.0f;
  float im = 0.0f;
  int n = 0;
  while (n < maxIter) {
    float re2 = re * re;
    float im2 = im * im;
    if (re2 + im2 > 4.0f) break;
    float newRe = re2 - im2 + cre;
    im = 2.0f * re * im + cim;
    re = newRe;
    ++n;
  }
  return n;
}
)";
  return source;
}

namespace {

std::string userFunctionSource() {
  return mandelIterateSource() + R"(
int func(int i, int width, int height,
         float minRe, float maxRe, float minIm, float maxIm, int maxIter) {
  int px = i % width;
  int py = i / width;
  float cre = minRe + (maxRe - minRe) * ((float)px / (float)width);
  float cim = minIm + (maxIm - minIm) * ((float)py / (float)height);
  return mandel_iterate(cre, cim, maxIter);
}
)";
}

std::string rawKernelSource() {
  // `offsetPx` lets each device compute its own slice of the image.
  return mandelIterateSource() + R"(
__kernel void mandel(__global int* out, int n, int offsetPx, int width, int height,
                     float minRe, float maxRe, float minIm, float maxIm, int maxIter) {
  int gi = get_global_id(0);
  if (gi >= n) return;
  int i = offsetPx + gi;
  int px = i % width;
  int py = i / width;
  float cre = minRe + (maxRe - minRe) * ((float)px / (float)width);
  float cim = minIm + (maxIm - minIm) * ((float)py / (float)height);
  out[gi] = mandel_iterate(cre, cim, maxIter);
}
)";
}

}  // namespace

MandelResult mandelSeq(const MandelConfig& cfg) {
  MandelResult result;
  result.iterations.resize(static_cast<std::size_t>(cfg.width) *
                           static_cast<std::size_t>(cfg.height));
  for (int py = 0; py < cfg.height; ++py) {
    for (int px = 0; px < cfg.width; ++px) {
      const float cre = cfg.minRe + (cfg.maxRe - cfg.minRe) *
                                        (static_cast<float>(px) / static_cast<float>(cfg.width));
      const float cim = cfg.minIm + (cfg.maxIm - cfg.minIm) *
                                        (static_cast<float>(py) / static_cast<float>(cfg.height));
      float re = 0.0f;
      float im = 0.0f;
      int n = 0;
      while (n < cfg.maxIterations) {
        const float re2 = re * re;
        const float im2 = im * im;
        if (re2 + im2 > 4.0f) break;
        const float newRe = re2 - im2 + cre;
        im = 2.0f * re * im + cim;
        re = newRe;
        ++n;
      }
      result.iterations[static_cast<std::size_t>(py) * static_cast<std::size_t>(cfg.width) +
                        static_cast<std::size_t>(px)] = n;
    }
  }
  return result;
}

MandelResult mandelSkelCL(const MandelConfig& cfg, int numGpus) {
  const std::size_t n =
      static_cast<std::size_t>(cfg.width) * static_cast<std::size_t>(cfg.height);
  init(sim::SystemConfig::teslaS1070(numGpus));
  MandelResult result;
  try {
    Map<std::int32_t(Index)> mandelMap(userFunctionSource());
    IndexVector index(n);
    // warm-up run compiles the program (excluded from timing, as the paper
    // excludes compilation)
    mandelMap(index, cfg.width, cfg.height, cfg.minRe, cfg.maxRe, cfg.minIm, cfg.maxIm,
              cfg.maxIterations);
    finish();
    resetSimClock();

    Vector<std::int32_t> out = mandelMap(index, cfg.width, cfg.height, cfg.minRe, cfg.maxRe,
                                         cfg.minIm, cfg.maxIm, cfg.maxIterations);
    result.iterations.assign(out.begin(), out.end());  // implicit download
    finish();
    result.simSeconds = simTimeSeconds();
  } catch (...) {
    terminate();
    throw;
  }
  terminate();
  return result;
}

MandelResult mandelOcl(const MandelConfig& cfg, int numGpus) {
  const std::size_t n =
      static_cast<std::size_t>(cfg.width) * static_cast<std::size_t>(cfg.height);
  ocl::Platform platform(sim::SystemConfig::teslaS1070(numGpus));
  ocl::Context context(platform.devices());
  ocl::Program program(context, rawKernelSource());
  program.build();
  ocl::Kernel kernel(program, "mandel");
  platform.system().resetClock();

  MandelResult result;
  result.iterations.resize(n);
  const int numDevices = platform.deviceCount();
  std::vector<std::unique_ptr<ocl::CommandQueue>> queues;
  std::vector<std::unique_ptr<ocl::Buffer>> buffers;
  std::vector<std::size_t> offsets(static_cast<std::size_t>(numDevices) + 1, 0);
  for (int d = 0; d < numDevices; ++d) {
    const std::size_t part =
        n / static_cast<std::size_t>(numDevices) +
        (static_cast<std::size_t>(d) < n % static_cast<std::size_t>(numDevices) ? 1 : 0);
    offsets[static_cast<std::size_t>(d) + 1] = offsets[static_cast<std::size_t>(d)] + part;
    queues.push_back(std::make_unique<ocl::CommandQueue>(context, platform.device(d)));
    buffers.push_back(std::make_unique<ocl::Buffer>(
        context, platform.device(d), std::max<std::size_t>(part, 1) * sizeof(std::int32_t)));
  }
  for (int d = 0; d < numDevices; ++d) {
    const std::size_t begin = offsets[static_cast<std::size_t>(d)];
    const std::size_t count = offsets[static_cast<std::size_t>(d) + 1] - begin;
    if (count == 0) continue;
    kernel.setArg(0, *buffers[static_cast<std::size_t>(d)]);
    kernel.setArg(1, static_cast<std::int32_t>(count));
    kernel.setArg(2, static_cast<std::int32_t>(begin));
    kernel.setArg(3, cfg.width);
    kernel.setArg(4, cfg.height);
    kernel.setArg(5, cfg.minRe);
    kernel.setArg(6, cfg.maxRe);
    kernel.setArg(7, cfg.minIm);
    kernel.setArg(8, cfg.maxIm);
    kernel.setArg(9, cfg.maxIterations);
    queues[static_cast<std::size_t>(d)]->enqueueNDRangeKernel(kernel, count);
  }
  for (int d = 0; d < numDevices; ++d) {
    const std::size_t begin = offsets[static_cast<std::size_t>(d)];
    const std::size_t count = offsets[static_cast<std::size_t>(d) + 1] - begin;
    if (count == 0) continue;
    queues[static_cast<std::size_t>(d)]->enqueueReadBuffer(
        *buffers[static_cast<std::size_t>(d)], 0, count * sizeof(std::int32_t),
        result.iterations.data() + begin, /*blocking=*/true);
  }
  for (auto& q : queues) q->finish();
  result.simSeconds = platform.system().hostNow();
  return result;
}

MandelResult mandelCuda(const MandelConfig& cfg, int numGpus) {
  const std::size_t n =
      static_cast<std::size_t>(cfg.width) * static_cast<std::size_t>(cfg.height);
  scuda::Runtime rt(sim::SystemConfig::teslaS1070(numGpus), {rawKernelSource()});
  scuda::KernelHandle kernel = rt.kernel("mandel");

  MandelResult result;
  result.iterations.resize(n);
  const int numDevices = rt.deviceCount();
  std::vector<scuda::DevPtr> buffers(static_cast<std::size_t>(numDevices));
  std::vector<std::size_t> offsets(static_cast<std::size_t>(numDevices) + 1, 0);
  for (int d = 0; d < numDevices; ++d) {
    const std::size_t part =
        n / static_cast<std::size_t>(numDevices) +
        (static_cast<std::size_t>(d) < n % static_cast<std::size_t>(numDevices) ? 1 : 0);
    offsets[static_cast<std::size_t>(d) + 1] = offsets[static_cast<std::size_t>(d)] + part;
    rt.setDevice(d);
    buffers[static_cast<std::size_t>(d)] =
        rt.malloc(std::max<std::size_t>(part, 1) * sizeof(std::int32_t));
  }
  for (int d = 0; d < numDevices; ++d) {
    const std::size_t begin = offsets[static_cast<std::size_t>(d)];
    const std::size_t count = offsets[static_cast<std::size_t>(d) + 1] - begin;
    if (count == 0) continue;
    rt.setDevice(d);
    rt.launch(kernel, count, buffers[static_cast<std::size_t>(d)],
              static_cast<std::int32_t>(count), static_cast<std::int32_t>(begin), cfg.width,
              cfg.height, cfg.minRe, cfg.maxRe, cfg.minIm, cfg.maxIm, cfg.maxIterations);
  }
  for (int d = 0; d < numDevices; ++d) {
    const std::size_t begin = offsets[static_cast<std::size_t>(d)];
    const std::size_t count = offsets[static_cast<std::size_t>(d) + 1] - begin;
    if (count == 0) continue;
    rt.memcpy(result.iterations.data() + begin, buffers[static_cast<std::size_t>(d)],
              count * sizeof(std::int32_t));
  }
  rt.synchronize();
  result.simSeconds = rt.system().hostNow();
  return result;
}

}  // namespace skelcl::mandel
