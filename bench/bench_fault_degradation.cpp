// Graceful degradation under device failure (docs/ROBUSTNESS.md): the cost of
// losing one of four GPUs in the middle of an OSEM reconstruction.
//
// Three runs of the same reconstruction are compared:
//   4 GPUs        -- fault-free reference
//   4 GPUs, 1 dies -- SKELCL_FAULTS-style kill of device 3 inside the first
//                     subset; the runtime blacklists it, redistributes onto
//                     the survivors and re-executes the interrupted skeleton
//   3 GPUs        -- the surviving configuration from the start
//
// The recovery overhead is the gap between the faulted run and the native
// 3-GPU run; correctness is checked bitwise (the degraded image must equal
// the 3-GPU reference exactly, and stay scientifically equivalent to the
// 4-GPU one).
//
//   usage: bench_fault_degradation [--events N] [--volume N] [--subsets N]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"
#include "osem/osem.hpp"
#include "sim/device_spec.hpp"

using namespace skelcl;

namespace {

// Float atomics in the OSEM kernel are order-sensitive under the
// multi-threaded executor; one VM thread makes the bitwise comparison
// meaningful.  Must run before the thread pool spins up.
const int kForceSingleThread = [] {
  setenv("SKELCL_THREADS", "1", 1);
  return 0;
}();

}  // namespace

int main(int argc, char** argv) {
  // SKELCL_TRACE=out.json records the fault/retry/redistribute records along
  // with the ordinary commands (docs/OBSERVABILITY.md).
  trace::enableFromEnv();
  osem::OsemConfig cfg;
  cfg.volume.nx = 32;
  cfg.volume.ny = 32;
  cfg.volume.nz = 32;
  cfg.eventsPerSubset = 5000;
  cfg.numSubsets = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // CI-sized run: small volume, few events, still enough commands for
      // device 3 to die mid-subset and the recovery path to fire.
      cfg.volume.nx = cfg.volume.ny = cfg.volume.nz = 16;
      cfg.eventsPerSubset = 800;
      cfg.numSubsets = 2;
    } else if (i + 1 < argc && std::strcmp(argv[i], "--events") == 0) {
      cfg.eventsPerSubset = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (i + 1 < argc && std::strcmp(argv[i], "--volume") == 0) {
      cfg.volume.nx = cfg.volume.ny = cfg.volume.nz = std::atoi(argv[++i]);
    } else if (i + 1 < argc && std::strcmp(argv[i], "--subsets") == 0) {
      cfg.numSubsets = std::atoi(argv[++i]);
    }
  }

  std::printf("generating synthetic PET data (%d^3 volume, %d subsets x %zu events)...\n",
              cfg.volume.nx, cfg.numSubsets, cfg.eventsPerSubset);
  const osem::OsemData data = osem::OsemData::generate(cfg);

  // Fault-free 4-GPU reference.
  const osem::OsemResult full = osem::runOsemSkelCL(data, 4);

  // Device 3 dies on its 4th command: the first subset's step-1 kernel, right
  // after the events/f/c uploads land.
  init(sim::SystemConfig::teslaS1070(4));
  sim::FaultPlan plan(42);
  plan.killAfterCommands(3, 3);
  setFaultPlan(std::move(plan));
  const osem::OsemResult degraded = osem::runOsemSkelCLPreInitialized(data);
  const int survivors = aliveDeviceCount();
  terminate();

  // The surviving configuration from the start.
  init(sim::SystemConfig::teslaS1070(4));
  blacklistDevice(3);
  const osem::OsemResult reference3 = osem::runOsemSkelCLPreInitialized(data);
  terminate();

  std::printf("\ngraceful degradation -- OSEM reconstruction, device 3 dies mid-iteration\n");
  std::printf("%-24s %14s %16s\n", "configuration", "total sim (s)", "s per subset");
  std::printf("%-24s %14.6f %16.6f\n", "4 GPUs (fault-free)", full.totalSimSeconds,
              full.secondsPerSubset);
  std::printf("%-24s %14.6f %16.6f\n", "4 GPUs, dev3 dies", degraded.totalSimSeconds,
              degraded.secondsPerSubset);
  std::printf("%-24s %14.6f %16.6f\n", "3 GPUs (from start)", reference3.totalSimSeconds,
              reference3.secondsPerSubset);

  const double vsFull = degraded.totalSimSeconds / full.totalSimSeconds - 1.0;
  const double recovery = degraded.totalSimSeconds / reference3.totalSimSeconds - 1.0;
  std::printf("\n  degradation vs 4 GPUs:        %+.1f%%\n", vsFull * 100.0);
  std::printf("  recovery overhead vs 3 GPUs:  %+.1f%% (re-uploads + re-executed subset)\n",
              recovery * 100.0);

  bool ok = survivors == 3;
  std::printf("\n  survivors after the fault: %d (expect 3)\n", survivors);
  const bool bitIdentical =
      degraded.image.size() == reference3.image.size() &&
      std::memcmp(degraded.image.data(), reference3.image.data(),
                  degraded.image.size() * sizeof(float)) == 0;
  std::printf("  degraded image vs native 3-GPU run: %s\n",
              bitIdentical ? "bit-identical" : "DIFFERS");
  ok = ok && bitIdentical;
  const double nrmse = osem::imageNrmse(degraded.image, full.image);
  std::printf("  NRMSE vs fault-free 4-GPU image: %.2e (expect < 2e-3)\n", nrmse);
  ok = ok && nrmse < 2e-3;
  ok = ok && degraded.totalSimSeconds > reference3.totalSimSeconds;

  std::printf("\ncheck: %s\n", ok ? "PASS" : "FAIL");
  if (trace::flushToEnvPath()) {
    std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
  }
  return ok ? 0 : 1;
}
