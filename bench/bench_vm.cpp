// Interpreter throughput benchmark (docs/VM.md): runs mandelbrot-shaped,
// OSEM-shaped and Gaussian-blur-stencil kernels on the kernelc VM across the
// whole tier ladder —
//   ref    tier 0, the guarded reference interpreter (SKELCL_KC_OPT=0)
//   fast   tier 1, peephole superinstructions + packed encoding
//   tier2  tier 2 pipeline (rewrite pass) on the sequential interpreter
//   batch  tier 2 pipeline on the work-group-batched interpreter
//          (Vm::runKernelBatch, 256-lane groups)
// and reports wall-clock Minstructions/s plus speedups over the tiers below.
// Outputs must be bit-identical and the retired-instruction counts equal
// across every configuration, otherwise the simulated GPU timings would
// drift; the benchmark exits nonzero on any divergence.
//
//   usage: bench_vm [--smoke] [--gate]
//     --smoke   small sizes (CI): divergence checks only
//     --gate    additionally require batch >= 3x fast on mandelbrot and osem
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "kernelc/program.hpp"
#include "kernelc/vm.hpp"

using namespace skelcl::kc;

namespace {

const char* const kMandelSrc = R"(
  __kernel void mandel(__global float* out, int width, int maxIter) {
    int gid = get_global_id(0);
    int px = gid % width;
    int py = gid / width;
    float cr = -2.0f + 3.0f * (float)px / (float)width;
    float ci = -1.5f + 3.0f * (float)py / (float)width;
    float zr = 0.0f; float zi = 0.0f;
    int it = 0;
    while (it < maxIter) {
      float zr2 = zr * zr; float zi2 = zi * zi;
      if (zr2 + zi2 > 4.0f) break;
      zi = 2.0f * zr * zi + ci;
      zr = zr2 - zi2 + cr;
      ++it;
    }
    out[gid] = (float)it;
  }
)";

const char* const kOsemSrc = R"(
  __kernel void project(__global float* img, __global float* out, int n, int span) {
    int gid = get_global_id(0);
    float acc = 0.0f;
    for (int i = 0; i < span; ++i) {
      acc = acc + img[(gid + i) % n] * 0.5f;
    }
    if (acc != 0.0f) acc = 1.0f / acc;
    out[gid] = acc;
  }
)";

// Vertical 5-tap Gaussian over a column-pitched image: each work-item reads
// its own column's taps at gid + t*512 from a halo-padded input.  Exercises
// the strength-reduction rule (t*512 becomes a tracked increment) and the
// LoadSlotElem superinstructions on the weight lookups.
const char* const kBlurSrc = R"(
  __kernel void blur(__global float* in, __global float* w, __global float* out) {
    int gid = get_global_id(0);
    float acc = 0.0f;
    for (int t = 0; t < 5; t = t + 1) {
      acc = acc + w[t] * in[gid + t * 512];
    }
    out[gid] = acc;
  }
)";

struct RunResult {
  double seconds = 0.0;
  std::uint64_t instructions = 0;
};

struct Workload {
  const char* name;
  const char* source;
  const char* kernel;
  std::int64_t items;
  std::vector<Slot> extraArgs;           ///< after the buffer pointer args
  std::vector<std::int64_t> inputSizes;  ///< element counts of buffers before `out`
};

struct Config {
  const char* name;
  int tier;
  bool batch;
};

RunResult runWorkload(const Workload& w, const Config& cfg, std::vector<float>& out) {
  const auto program = compileProgram(w.source, CompileOptions{cfg.tier});

  std::vector<std::vector<float>> inputs;
  std::vector<MemRegion> regions;
  std::vector<Slot> args;
  int b = 0;
  for (const std::int64_t size : w.inputSizes) {
    inputs.emplace_back(static_cast<std::size_t>(size));
    for (std::size_t i = 0; i < inputs.back().size(); ++i) {
      inputs.back()[i] = 0.25f * static_cast<float>((i * 7 + static_cast<std::size_t>(b)) % 100 + 1);
    }
    regions.push_back(MemRegion{reinterpret_cast<std::byte*>(inputs.back().data()),
                                inputs.back().size() * sizeof(float)});
    Ptr p;
    p.region = static_cast<std::int32_t>(regions.size());
    p.offset = 0;
    args.push_back(Slot::fromPtr(p));
    ++b;
  }
  out.assign(static_cast<std::size_t>(w.items), 0.0f);
  regions.push_back(
      MemRegion{reinterpret_cast<std::byte*>(out.data()), out.size() * sizeof(float)});
  Ptr p;
  p.region = static_cast<std::int32_t>(regions.size());
  p.offset = 0;
  args.push_back(Slot::fromPtr(p));
  args.insert(args.end(), w.extraArgs.begin(), w.extraArgs.end());

  Vm vm(*program, regions);
  const int k = program->findKernel(w.kernel);
  if (k < 0) {
    std::fprintf(stderr, "no kernel '%s'\n", w.kernel);
    std::exit(1);
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (cfg.batch) {
    for (std::int64_t gid = 0; gid < w.items;) {
      const std::int64_t lanes = std::min<std::int64_t>(w.items - gid, Vm::kBatchLanes);
      vm.runKernelBatch(k, args, gid, lanes, w.items);
      gid += lanes;
    }
  } else {
    for (std::int64_t gid = 0; gid < w.items; ++gid) {
      vm.runKernel(k, args, gid, w.items);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.instructions = vm.instructionsExecuted();
  return r;
}

constexpr Config kConfigs[] = {
    {"ref", 0, false},
    {"fast", 1, false},
    {"tier2", 2, false},
    {"batch", 2, true},
};
constexpr int kNumConfigs = static_cast<int>(sizeof(kConfigs) / sizeof(kConfigs[0]));

struct BenchOutcome {
  bool identical = true;
  double speedupBatchOverFast = 0.0;
};

BenchOutcome benchWorkload(const Workload& w) {
  RunResult results[kNumConfigs];
  std::vector<float> outs[kNumConfigs];
  for (int c = 0; c < kNumConfigs; ++c) {
    results[c] = runWorkload(w, kConfigs[c], outs[c]);
  }

  BenchOutcome outcome;
  for (int c = 1; c < kNumConfigs; ++c) {
    if (results[c].instructions != results[0].instructions) {
      std::fprintf(stderr, "%s: retired-instruction mismatch: %s %llu vs ref %llu\n",
                   w.name, kConfigs[c].name,
                   static_cast<unsigned long long>(results[c].instructions),
                   static_cast<unsigned long long>(results[0].instructions));
      outcome.identical = false;
    }
    if (std::memcmp(outs[c].data(), outs[0].data(), outs[0].size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "%s: %s output is not bit-identical to ref\n", w.name,
                   kConfigs[c].name);
      outcome.identical = false;
    }
  }

  std::printf("%-12s %12llu instr  ", w.name,
              static_cast<unsigned long long>(results[0].instructions));
  for (int c = 0; c < kNumConfigs; ++c) {
    const double mips =
        results[c].seconds > 0 ? results[c].instructions / results[c].seconds / 1e6 : 0.0;
    std::printf(" %s %8.1f Mi/s", kConfigs[c].name, mips);
  }
  const double fastSec = results[1].seconds;
  const double batchSec = results[3].seconds;
  outcome.speedupBatchOverFast = batchSec > 0 ? fastSec / batchSec : 0.0;
  std::printf("   batch/fast %.2fx  batch/ref %.2fx\n", outcome.speedupBatchOverFast,
              batchSec > 0 ? results[0].seconds / batchSec : 0.0);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }

  const int width = smoke ? 32 : 512;
  const std::int64_t mandelItems = static_cast<std::int64_t>(width) * width;
  const int maxIter = smoke ? 32 : 512;
  const std::int64_t osemItems = smoke ? 512 : 16384;
  const int osemSpan = smoke ? 64 : 512;
  const std::int64_t blurItems = smoke ? 1024 : 65536;

  const Workload mandel{"mandelbrot", kMandelSrc, "mandel", mandelItems,
                        {Slot::fromInt(static_cast<std::int64_t>(width)),
                         Slot::fromInt(static_cast<std::int64_t>(maxIter))},
                        /*inputSizes=*/{}};
  const Workload osem{"osem", kOsemSrc, "project", osemItems,
                      {Slot::fromInt(osemItems),
                       Slot::fromInt(static_cast<std::int64_t>(osemSpan))},
                      /*inputSizes=*/{osemItems}};
  // Input is halo-padded: taps reach up to gid + 4*512 past the last item.
  const Workload blur{"blur", kBlurSrc, "blur", blurItems,
                      {},
                      /*inputSizes=*/{blurItems + 5 * 512, 5}};

  const BenchOutcome m = benchWorkload(mandel);
  const BenchOutcome o = benchWorkload(osem);
  const BenchOutcome bl = benchWorkload(blur);
  bool ok = m.identical && o.identical && bl.identical;
  if (gate && !smoke) {
    if (m.speedupBatchOverFast < 3.0) {
      std::fprintf(stderr, "gate: mandelbrot batch/fast %.2fx < 3x\n",
                   m.speedupBatchOverFast);
      ok = false;
    }
    if (o.speedupBatchOverFast < 3.0) {
      std::fprintf(stderr, "gate: osem batch/fast %.2fx < 3x\n", o.speedupBatchOverFast);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
