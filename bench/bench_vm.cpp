// Interpreter throughput benchmark (docs/VM.md): runs mandelbrot-shaped and
// OSEM-shaped kernels on the kernelc VM under both pipelines — the default
// optimized one (peephole superinstructions, packed 16-byte encoding, fast
// interpreter) and the SKELCL_KC_OPT=0 reference one — and reports wall-clock
// Minstructions/s plus the speedup.  Outputs must be bit-identical and the
// retired-instruction counts equal, otherwise the simulated GPU timings would
// drift; the benchmark exits nonzero on any divergence.
//
//   usage: bench_vm [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "kernelc/program.hpp"
#include "kernelc/vm.hpp"

using namespace skelcl::kc;

namespace {

const char* const kMandelSrc = R"(
  __kernel void mandel(__global float* out, int width, int maxIter) {
    int gid = get_global_id(0);
    int px = gid % width;
    int py = gid / width;
    float cr = -2.0f + 3.0f * (float)px / (float)width;
    float ci = -1.5f + 3.0f * (float)py / (float)width;
    float zr = 0.0f; float zi = 0.0f;
    int it = 0;
    while (it < maxIter) {
      float zr2 = zr * zr; float zi2 = zi * zi;
      if (zr2 + zi2 > 4.0f) break;
      zi = 2.0f * zr * zi + ci;
      zr = zr2 - zi2 + cr;
      ++it;
    }
    out[gid] = (float)it;
  }
)";

const char* const kOsemSrc = R"(
  __kernel void project(__global float* img, __global float* out, int n, int span) {
    int gid = get_global_id(0);
    float acc = 0.0f;
    for (int i = 0; i < span; ++i) {
      acc = acc + img[(gid + i) % n] * 0.5f;
    }
    if (acc != 0.0f) acc = 1.0f / acc;
    out[gid] = acc;
  }
)";

struct RunResult {
  double seconds = 0.0;
  std::uint64_t instructions = 0;
};

struct Workload {
  const char* name;
  const char* source;
  const char* kernel;
  std::int64_t items;
  std::vector<Slot> extraArgs;   ///< after the buffer pointer args
  int inputBuffers = 0;          ///< buffers before `out` (filled with data)
};

RunResult runWorkload(const Workload& w, bool optimize, std::vector<float>& out) {
  const auto program = compileProgram(w.source, CompileOptions{optimize});

  std::vector<std::vector<float>> inputs;
  std::vector<MemRegion> regions;
  std::vector<Slot> args;
  for (int b = 0; b < w.inputBuffers; ++b) {
    inputs.emplace_back(static_cast<std::size_t>(w.items));
    for (std::size_t i = 0; i < inputs.back().size(); ++i) {
      inputs.back()[i] = 0.25f * static_cast<float>((i * 7 + b) % 100 + 1);
    }
    regions.push_back(MemRegion{reinterpret_cast<std::byte*>(inputs.back().data()),
                                inputs.back().size() * sizeof(float)});
    Ptr p;
    p.region = static_cast<std::int32_t>(regions.size());
    p.offset = 0;
    args.push_back(Slot::fromPtr(p));
  }
  out.assign(static_cast<std::size_t>(w.items), 0.0f);
  regions.push_back(
      MemRegion{reinterpret_cast<std::byte*>(out.data()), out.size() * sizeof(float)});
  Ptr p;
  p.region = static_cast<std::int32_t>(regions.size());
  p.offset = 0;
  args.push_back(Slot::fromPtr(p));
  args.insert(args.end(), w.extraArgs.begin(), w.extraArgs.end());

  Vm vm(*program, regions);
  const int k = program->findKernel(w.kernel);
  if (k < 0) {
    std::fprintf(stderr, "no kernel '%s'\n", w.kernel);
    std::exit(1);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t gid = 0; gid < w.items; ++gid) {
    vm.runKernel(k, args, gid, w.items);
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.instructions = vm.instructionsExecuted();
  return r;
}

bool benchWorkload(const Workload& w) {
  std::vector<float> fastOut;
  std::vector<float> refOut;
  const RunResult fast = runWorkload(w, /*optimize=*/true, fastOut);
  const RunResult ref = runWorkload(w, /*optimize=*/false, refOut);

  bool ok = true;
  if (fast.instructions != ref.instructions) {
    std::fprintf(stderr,
                 "%s: retired-instruction mismatch: optimized %llu vs reference %llu\n",
                 w.name, static_cast<unsigned long long>(fast.instructions),
                 static_cast<unsigned long long>(ref.instructions));
    ok = false;
  }
  if (std::memcmp(fastOut.data(), refOut.data(), fastOut.size() * sizeof(float)) != 0) {
    std::fprintf(stderr, "%s: output buffers are not bit-identical\n", w.name);
    ok = false;
  }

  const double fastMips = fast.instructions / fast.seconds / 1e6;
  const double refMips = ref.instructions / ref.seconds / 1e6;
  std::printf("%-12s %12llu instr   optimized %8.1f Mi/s   reference %8.1f Mi/s   speedup %.2fx\n",
              w.name, static_cast<unsigned long long>(fast.instructions), fastMips,
              refMips, fast.seconds > 0 ? ref.seconds / fast.seconds : 0.0);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int width = smoke ? 32 : 512;
  const std::int64_t mandelItems = static_cast<std::int64_t>(width) * width;
  const int maxIter = smoke ? 32 : 512;
  const std::int64_t osemItems = smoke ? 512 : 16384;
  const int osemSpan = smoke ? 64 : 512;

  const Workload mandel{"mandelbrot", kMandelSrc, "mandel", mandelItems,
                        {Slot::fromInt(static_cast<std::int64_t>(width)),
                         Slot::fromInt(static_cast<std::int64_t>(maxIter))},
                        /*inputBuffers=*/0};
  const Workload osem{"osem", kOsemSrc, "project", osemItems,
                      {Slot::fromInt(osemItems),
                       Slot::fromInt(static_cast<std::int64_t>(osemSpan))},
                      /*inputBuffers=*/1};

  bool ok = benchWorkload(mandel);
  ok = benchWorkload(osem) && ok;
  return ok ? 0 : 1;
}
