// Ablation: runtime kernel compilation and SkelCL's program cache.
//
// SkelCL (like OpenCL) compiles generated kernels at runtime — the paper
// notes compilation "is only required once, when launching the
// implementation" and excludes it from measurements.  This benchmark makes
// the cost visible: the first execution of a skeleton pays compilation on
// the host clock; repeated executions hit the cache; distinct user functions
// compile separately.
#include <cstdio>
#include <string>

#include "core/skelcl.hpp"

using namespace skelcl;

int main() {
  init(sim::SystemConfig::teslaS1070(1));
  {
    const std::size_t n = 1 << 12;  // tiny: exposes compile cost vs work
    Vector<float> v(n);

    std::printf("runtime compilation / program cache ablation (map over %zu floats)\n\n",
                n);
    std::printf("%-34s %14s\n", "execution", "simulated time");

    Map<float(float)> first("float func(float x) { return x + 1.0f; }");
    resetSimClock();
    first(v);
    finish();
    const double cold = simTimeSeconds();
    std::printf("%-34s %11.3f ms   <- includes clBuildProgram\n",
                "1st run (cold: compiles)", cold * 1e3);

    v.dataOnHostModified();
    resetSimClock();
    first(v);
    finish();
    const double warm = simTimeSeconds();
    std::printf("%-34s %11.3f ms   <- program cache hit\n", "2nd run (warm)", warm * 1e3);

    Map<float(float)> second("float func(float x) { return x + 2.0f; }");
    v.dataOnHostModified();
    resetSimClock();
    second(v);
    finish();
    const double other = simTimeSeconds();
    std::printf("%-34s %11.3f ms   <- new user function recompiles\n",
                "different user function", other * 1e3);

    Map<float(float)> sameSource("float func(float x) { return x + 2.0f; }");
    v.dataOnHostModified();
    resetSimClock();
    sameSource(v);
    finish();
    const double aliased = simTimeSeconds();
    std::printf("%-34s %11.3f ms   <- identical source: cache hit\n",
                "same source, new skeleton object", aliased * 1e3);

    std::printf("\ncompilation overhead on a cold run: %.1fx the warm run\n", cold / warm);
    std::printf("(benchmarks therefore warm up before their timed sections,\n"
                " matching the paper's exclusion of compile time)\n");
  }
  terminate();
  return 0;
}
