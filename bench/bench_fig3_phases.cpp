// Figure 3 companion: where the time of one OSEM subset iteration goes.
//
// The paper's Figure 3 diagrams the five phases (upload, step 1,
// redistribution, step 2, download).  This benchmark reproduces the
// breakdown quantitatively by running the SkelCL implementation with a
// barrier after every phase and attributing the simulated time.  It makes
// the Figure 4b scaling story concrete: the compute phase shrinks with more
// GPUs while the host-bound redistribution does not.
#include <cstdio>
#include <vector>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"
#include "osem/osem.hpp"
#include "osem/osem_kernels.hpp"

using namespace skelcl;
using namespace skelcl::osem;

namespace {

struct PhaseTimes {
  double upload = 0.0;
  double step1 = 0.0;
  double redistribute = 0.0;
  double step2 = 0.0;
  double download = 0.0;
  double total() const { return upload + step1 + redistribute + step2 + download; }
};

PhaseTimes measure(const OsemData& data, int gpus) {
  registerOsemKernelTypes();
  init(sim::SystemConfig::teslaS1070(gpus));
  PhaseTimes t;
  {
    const VolumeSpec& vol = data.volume();
    Map<int(Index)> mapComputeC(step1UserFunctionSource());
    Zip<float> zipUpdate(step2UserFunctionSource());
    Vector<float> f(vol.voxels());
    std::fill(f.begin(), f.end(), 1.0f);

    // warm-up subset compiles both programs (excluded, as in the paper)
    {
      Vector<Event> events(std::vector<Event>(data.subset(0), data.subset(0) + data.subsetSize()));
      IndexVector index(data.subsetSize());
      events.setDistribution(Distribution::block());
      index.setDistribution(Distribution::block());
      f.setDistribution(Distribution::copy());
      Vector<float> c(vol.voxels());
      c.setDistribution(Distribution::copy("float func(float a, float b) { return a + b; }"));
      mapComputeC(index, events, events.offsets(), events.sizes(), f, c, vol.nx, vol.ny,
                  vol.nz, vol.voxel);
      c.dataOnDevicesModified();
      f.setDistribution(Distribution::block());
      c.setDistribution(Distribution::block());
      zipUpdate(out(f), f, c);
      finish();
    }
    resetSimClock();

    // the measured subset, one barrier per phase
    Vector<Event> events(std::vector<Event>(data.subset(1), data.subset(1) + data.subsetSize()));
    IndexVector index(data.subsetSize());
    events.setDistribution(Distribution::block());
    index.setDistribution(Distribution::block());
    f.setDistribution(Distribution::copy());
    Vector<float> c(vol.voxels());
    c.setDistribution(Distribution::copy("float func(float a, float b) { return a + b; }"));

    double mark = simTimeSeconds();
    events.impl().ensureOnDevices();  // phase 1: upload events + f copies + c zeros
    f.impl().ensureOnDevices();
    c.impl().ensureOnDevices();
    finish();
    t.upload = simTimeSeconds() - mark;

    mark = simTimeSeconds();
    mapComputeC(index, events, events.offsets(), events.sizes(), f, c, vol.nx, vol.ny,
                vol.nz, vol.voxel);
    c.dataOnDevicesModified();
    finish();
    t.step1 = simTimeSeconds() - mark;

    mark = simTimeSeconds();
    f.setDistribution(Distribution::block());  // phase 3: combine + repartition
    c.setDistribution(Distribution::block());
    f.impl().ensureOnDevices();
    c.impl().ensureOnDevices();
    finish();
    t.redistribute = simTimeSeconds() - mark;

    mark = simTimeSeconds();
    zipUpdate(out(f), f, c);
    finish();
    t.step2 = simTimeSeconds() - mark;

    mark = simTimeSeconds();
    (void)f[0];  // phase 5: implicit download of the reconstruction image
    finish();
    t.download = simTimeSeconds() - mark;
  }
  terminate();
  return t;
}

}  // namespace

int main() {
  // SKELCL_TRACE=out.json records every simulated command as a
  // chrome://tracing timeline (docs/OBSERVABILITY.md).
  skelcl::trace::enableFromEnv();
  OsemConfig cfg;
  cfg.volume.nx = cfg.volume.ny = cfg.volume.nz = 48;
  cfg.eventsPerSubset = 15000;
  cfg.numSubsets = 2;
  std::printf("generating synthetic PET data (%d^3 volume, %zu events/subset)...\n",
              cfg.volume.nx, cfg.eventsPerSubset);
  const OsemData data = OsemData::generate(cfg);

  std::printf("\nFigure 3 companion -- simulated milliseconds per phase of one SkelCL\n"
              "OSEM subset iteration (barriers between phases)\n\n");
  std::printf("%-6s %9s %9s %13s %9s %10s %9s\n", "GPUs", "upload", "step 1", "redistribute",
              "step 2", "download", "total");
  for (int gpus : {1, 2, 4}) {
    const PhaseTimes t = measure(data, gpus);
    std::printf("%-6d %9.3f %9.3f %13.3f %9.3f %10.3f %9.3f\n", gpus, t.upload * 1e3,
                t.step1 * 1e3, t.redistribute * 1e3, t.step2 * 1e3, t.download * 1e3,
                t.total() * 1e3);
  }
  std::printf("\nstep 1 (the PSD compute phase) scales with GPUs; the redistribution\n"
              "phase is host-bound and does not -- the structural reason Figure 4b's\n"
              "speedup is sub-linear.\n");
  if (skelcl::trace::flushToEnvPath()) {
    std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
  }
  return 0;
}
