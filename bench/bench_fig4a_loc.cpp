// Figure 4a: program size (lines of code) of the parallel list-mode OSEM
// implementations — host code and GPU (kernel) code, for SkelCL, OpenCL and
// CUDA in single- and multi-GPU versions.
//
// The numbers are counted from this repository's own implementations (the
// same six the equivalence tests exercise), so the comparison is live: edit
// an implementation and the figure regenerates.
#include <cstdio>
#include <string>

#include "loc_counter.hpp"

int main() {
  using skelcl::bench::countLoc;
  const std::string dir = SKELCL_OSEM_SOURCE_DIR;

  // All implementations share the device algorithm (as the paper's versions
  // share one); the kernel-side LOC is therefore identical.
  const int kernelLoc = countLoc(dir + "/osem_kernels.cpp", "kernel");

  struct Row {
    const char* name;
    int host;
    int kernel;
  };
  const Row rows[] = {
      {"SkelCL  single", countLoc(dir + "/osem_skelcl.cpp", "skelcl-single-host"), kernelLoc},
      {"SkelCL  multi ", countLoc(dir + "/osem_skelcl.cpp", "skelcl-host"), kernelLoc},
      {"OpenCL  single", countLoc(dir + "/osem_ocl.cpp", "ocl-single-host"), kernelLoc},
      {"OpenCL  multi ", countLoc(dir + "/osem_ocl.cpp", "ocl-multi-host"), kernelLoc},
      {"CUDA    single", countLoc(dir + "/osem_cuda.cpp", "cuda-single-host"), kernelLoc},
      {"CUDA    multi ", countLoc(dir + "/osem_cuda.cpp", "cuda-multi-host"), kernelLoc},
  };

  std::printf("Figure 4a -- program size of list-mode OSEM (lines of code)\n");
  std::printf("%-16s %8s %8s %8s\n", "implementation", "host", "kernel", "total");
  for (const Row& r : rows) {
    std::printf("%-16s %8d %8d %8d\n", r.name, r.host, r.kernel, r.host + r.kernel);
  }

  const double oclOverSkelclSingle =
      static_cast<double>(rows[2].host) / static_cast<double>(rows[0].host);
  const double cudaOverSkelclSingle =
      static_cast<double>(rows[4].host) / static_cast<double>(rows[0].host);
  const int skelclMultiExtra = rows[1].host - rows[0].host;
  const int oclMultiExtra = rows[3].host - rows[2].host;
  const int cudaMultiExtra = rows[5].host - rows[4].host;

  std::printf("\npaper-shape checks:\n");
  std::printf("  OpenCL host / SkelCL host (single)     : %.1fx   (paper: ~11x)\n",
              oclOverSkelclSingle);
  std::printf("  CUDA host   / SkelCL host (single)     : %.1fx   (paper: ~5x)\n",
              cudaOverSkelclSingle);
  std::printf("  (single-GPU ratios are compressed: the simulated OpenCL host API is\n"
              "   RAII C++, so discovery/compile boilerplate is ~10 lines where real\n"
              "   OpenCL C needs ~100; the ordering and the multi-GPU deltas hold)\n");
  std::printf("  extra host LOC for multi-GPU -- SkelCL : %d      (paper: 8)\n",
              skelclMultiExtra);
  std::printf("  extra host LOC for multi-GPU -- OpenCL : %d     (paper: 37)\n",
              oclMultiExtra);
  std::printf("  extra host LOC for multi-GPU -- CUDA   : %d     (paper: 42)\n",
              cudaMultiExtra);
  std::printf("  kernel code is shared/similar across implementations (paper: ~200 LOC)\n");
  return 0;
}
