// Heterogeneous static scheduling benchmark (paper Section V): even vs
// model-proportional block distribution on a machine with one multi-core CPU
// and two different GPUs, for user functions of different weight; plus the
// CPU-vs-GPU crossover for the final reduction step.
#include <cstdio>

#include "core/skelcl.hpp"
#include "sched/scheduler.hpp"

using namespace skelcl;

namespace {

double timedMap(const char* userFunc, bool scheduled) {
  init(sim::SystemConfig::heterogeneousLab());
  double t = 0.0;
  {
    if (scheduled) sched::autoSchedule(userFunc);
    Map<float(float)> map(userFunc);
    constexpr std::size_t kSize = 1 << 18;
    Vector<float> v(kSize);
    for (std::size_t i = 0; i < kSize; ++i) v[i] = static_cast<float>(i % 11);
    map(v);  // warm-up
    finish();
    v.dataOnHostModified();
    resetSimClock();
    map(v);
    finish();
    t = simTimeSeconds();
    setPartitionWeights({});
  }
  terminate();
  return t;
}

}  // namespace

int main() {
  struct Func {
    const char* name;
    const char* source;
  };
  const Func funcs[] = {
      {"light (x+1)", "float func(float x) { return x + 1.0f; }"},
      {"medium (16 fma)",
       "float func(float x) { float s = x;"
       " for (int i = 0; i < 16; ++i) s = s * 0.5f + 1.0f; return s; }"},
      {"heavy (64 fma)",
       "float func(float x) { float s = x;"
       " for (int i = 0; i < 64; ++i) s = s * 0.5f + 1.0f; return s; }"},
  };

  std::printf("map over 262144 floats on the heterogeneous lab machine\n");
  std::printf("(Xeon E5520 + GTX480-class + GT240-class)\n\n");
  std::printf("%-18s %12s %14s %9s\n", "user function", "even (s)", "scheduled (s)",
              "speedup");
  for (const Func& f : funcs) {
    const double even = timedMap(f.source, false);
    const double scheduled = timedMap(f.source, true);
    std::printf("%-18s %12.6f %14.6f %8.2fx\n", f.name, even, scheduled, even / scheduled);
  }

  std::printf("\nreduce finalization crossover (Section V: GPUs are poor at reducing\n"
              "few elements; the host should fold small partial vectors):\n");
  const auto cost = sched::measureUserFunction("float func(float a, float b) { return a + b; }");
  const auto gpu = sim::SystemConfig::teslaS1070(1).devices[0];
  const double hostRate = 4.0 * 2.26e9 * 0.5;
  std::printf("%-14s %s\n", "elements", "final fold runs on");
  for (std::uint64_t n : {64ull, 1024ull, 65536ull, 1048576ull, 100000000ull}) {
    std::printf("%-14llu %s\n", static_cast<unsigned long long>(n),
                sched::hostShouldFinishReduce(gpu, n, cost, hostRate) ? "CPU" : "GPU");
  }
  return 0;
}
