// Shared helper for the Figure 4a benchmark: count effective lines of code
// between OSEM-LOC-BEGIN(tag) / OSEM-LOC-END markers in a source file.
#pragma once

#include <fstream>
#include <stdexcept>
#include <string>

#include "base/strings.hpp"

namespace skelcl::bench {

/// Lines that are non-empty and not pure comments, between the markers.
inline int countLoc(const std::string& path, const std::string& tag) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  const std::string begin = "OSEM-LOC-BEGIN(" + tag + ")";
  const std::string end = "OSEM-LOC-END";
  bool active = false;
  int count = 0;
  bool inBlockComment = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(begin) != std::string::npos) {
      active = true;
      continue;
    }
    if (active && line.find(end) != std::string::npos) break;
    if (!active) continue;

    std::string_view t = str::trim(line);
    if (t.empty()) continue;
    if (inBlockComment) {
      if (t.find("*/") != std::string_view::npos) inBlockComment = false;
      continue;
    }
    if (str::startsWith(t, "//")) continue;
    if (str::startsWith(t, "/*")) {
      if (t.find("*/") == std::string_view::npos) inBlockComment = true;
      continue;
    }
    ++count;
  }
  return count;
}

}  // namespace skelcl::bench
