// Figure 4b: average runtime of one list-mode OSEM subset iteration with
// SkelCL, OpenCL and CUDA on 1, 2 and 4 GPUs of the simulated Tesla S1070.
//
// Absolute values cannot match the authors' 2009 testbed; the claims checked
// are the *shapes* (Section IV-C): CUDA is fastest, OpenCL ~20% behind,
// SkelCL within 5% of OpenCL, and multi-GPU scaling is clearly sub-linear
// because the redistribution phase is host-bound.
//
//   usage: bench_fig4b_osem [--events N] [--volume N] [--subsets N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/detail/trace.hpp"
#include "osem/osem.hpp"

using namespace skelcl::osem;

int main(int argc, char** argv) {
  // SKELCL_TRACE=out.json (or --trace out.json) records every simulated
  // command as a chrome://tracing timeline (docs/OBSERVABILITY.md).
  skelcl::trace::enableFromEnv();
  std::string tracePath;
  OsemConfig cfg;
  cfg.volume.nx = 48;
  cfg.volume.ny = 48;
  cfg.volume.nz = 48;
  cfg.eventsPerSubset = 15000;
  cfg.numSubsets = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--events") == 0) {
      cfg.eventsPerSubset = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--volume") == 0) {
      cfg.volume.nx = cfg.volume.ny = cfg.volume.nz = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--subsets") == 0) {
      cfg.numSubsets = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      tracePath = argv[i + 1];
      skelcl::trace::enable();
    }
  }

  std::printf("generating synthetic PET data (%d^3 volume, %d subsets x %zu events)...\n",
              cfg.volume.nx, cfg.numSubsets, cfg.eventsPerSubset);
  const OsemData data = OsemData::generate(cfg);

  const int gpuCounts[] = {1, 2, 4};
  double skelcl[3];
  double opencl[3];
  double cuda[3];
  for (int g = 0; g < 3; ++g) {
    skelcl[g] = runOsemSkelCL(data, gpuCounts[g]).secondsPerSubset;
    opencl[g] = runOsemOcl(data, gpuCounts[g]).secondsPerSubset;
    cuda[g] = runOsemCuda(data, gpuCounts[g]).secondsPerSubset;
  }

  std::printf("\nFigure 4b -- average simulated runtime of one subset iteration (seconds)\n");
  std::printf("%-10s %12s %12s %12s\n", "impl", "1 GPU", "2 GPUs", "4 GPUs");
  std::printf("%-10s %12.6f %12.6f %12.6f\n", "SkelCL", skelcl[0], skelcl[1], skelcl[2]);
  std::printf("%-10s %12.6f %12.6f %12.6f\n", "OpenCL", opencl[0], opencl[1], opencl[2]);
  std::printf("%-10s %12.6f %12.6f %12.6f\n", "CUDA", cuda[0], cuda[1], cuda[2]);

  std::printf("\npaper-shape checks (Section IV-C):\n");
  bool ok = true;
  for (int g = 0; g < 3; ++g) {
    const double oclOverCuda = opencl[g] / cuda[g];
    const double skelclOverOcl = skelcl[g] / opencl[g];
    std::printf(
        "  %d GPU(s): OpenCL/CUDA = %.3f (paper ~1.2)   SkelCL/OpenCL = %.3f (paper <1.05)\n",
        gpuCounts[g], oclOverCuda, skelclOverOcl);
    ok = ok && cuda[g] < opencl[g] && cuda[g] < skelcl[g] && skelclOverOcl < 1.10;
  }
  const double speedup = skelcl[0] / skelcl[2];
  std::printf("  SkelCL speedup 1 -> 4 GPUs: %.2fx (paper ~2.4x; sub-linear because the\n",
              speedup);
  std::printf("  redistribution phase is host-bound and GPU pairs share PCIe links)\n");
  ok = ok && speedup > 1.3 && speedup < 4.0;
  std::printf("\nshape check: %s\n", ok ? "PASS" : "FAIL");
  if (!tracePath.empty()) {
    if (skelcl::trace::writeChromeTrace(tracePath)) {
      std::printf("trace written to %s (open in chrome://tracing)\n", tracePath.c_str());
    }
  } else if (skelcl::trace::flushToEnvPath()) {
    std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
  }
  return ok ? 0 : 1;
}
