// Ablation of the lazy copying optimization (paper Section II-B): a map
// skeleton feeding a reduce skeleton.  Lazily, the intermediate vector never
// leaves the GPUs; the "eager" variant forces it through host memory after
// every skeleton, the way a naive implementation would.
#include <cstdio>

#include "core/skelcl.hpp"

using namespace skelcl;

int main() {
  constexpr std::size_t kSize = 1 << 20;

  struct Mode {
    const char* name;
    bool eager;
  };
  double lazySeconds = 0.0;
  std::printf("map(square) -> reduce(+) over %zu floats on 4 GPUs\n\n", kSize);
  std::printf("%-8s %12s %12s %14s\n", "mode", "seconds", "transfers", "bytes moved");

  for (const Mode mode : {Mode{"lazy", false}, Mode{"eager", true}}) {
    init(sim::SystemConfig::teslaS1070(4));
    {
      Map<float(float)> square("float func(float x) { return x * x; }");
      Reduce<float> sum("float func(float a, float b) { return a + b; }");
      Vector<float> v(kSize);
      for (std::size_t i = 0; i < kSize; ++i) v[i] = 1.0f;

      // warm-up: compile both programs
      sum(square(v));
      finish();
      v.dataOnHostModified();
      resetSimClock();

      Vector<float> squared = square(v);
      if (mode.eager) {
        (void)squared[0];              // force the download...
        squared.dataOnHostModified();  // ...and a full re-upload
      }
      const float result = sum(squared);
      finish();
      if (result != static_cast<float>(kSize)) {
        std::fprintf(stderr, "wrong result %f\n", result);
        return 1;
      }
      const double t = simTimeSeconds();
      if (!mode.eager) lazySeconds = t;
      std::printf("%-8s %12.6f %12llu %14llu\n", mode.name, t,
                  static_cast<unsigned long long>(simStats().transfers),
                  static_cast<unsigned long long>(simStats().bytes_transferred));
      if (mode.eager) {
        std::printf("\nlazy copying avoids the intermediate round-trip entirely: %.2fx faster\n",
                    t / lazySeconds);
      }
    }
    terminate();
  }
  return 0;
}
