// Figure 2 companion benchmark: the multi-GPU scan skeleton.  Verifies the
// worked [1..16] example and measures how the four-phase implementation
// (local scans -> block-sum download -> implicit offset maps) scales with
// the number of GPUs.
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

double timedScan(int gpus, std::size_t n) {
  init(sim::SystemConfig::teslaS1070(gpus));
  double t = 0.0;
  {
    Scan<int> scan("int func(int a, int b) { return a + b; }");
    Vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i % 5);
    scan(v);  // warm-up: compile
    finish();
    v.dataOnHostModified();
    resetSimClock();
    Vector<int> out = scan(v);
    finish();
    t = simTimeSeconds();

    // correctness spot check
    std::vector<int> expect(n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = static_cast<int>(i % 5);
    std::partial_sum(expect.begin(), expect.end(), expect.begin());
    for (std::size_t i : {std::size_t{0}, n / 2, n - 1}) {
      if (out[i] != expect[i]) {
        std::fprintf(stderr, "scan mismatch at %zu: %d != %d\n", i, out[i], expect[i]);
        std::exit(1);
      }
    }
  }
  terminate();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  // `--trace out.json` or SKELCL_TRACE=out.json: record every simulated
  // command and export a chrome://tracing timeline (docs/OBSERVABILITY.md).
  std::string tracePath;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--trace") == 0) tracePath = argv[i + 1];
  }
  if (!tracePath.empty()) {
    trace::enable();
  } else {
    trace::enableFromEnv();
  }

  // The paper's worked example first.
  init(sim::SystemConfig::teslaS1070(4));
  {
    Scan<int> scan("int func(int a, int b) { return a + b; }");
    Vector<int> v(16);
    for (int i = 0; i < 16; ++i) v[static_cast<std::size_t>(i)] = i + 1;
    Vector<int> out = scan(v);
    std::printf("Figure 2 worked example -- scan([1..16], +) on 4 GPUs:\n  ");
    for (std::size_t i = 0; i < 16; ++i) std::printf("%d ", out[i]);
    std::printf("\n  (paper: 1 3 6 10 15 21 28 36 45 55 66 78 91 105 120 136)\n\n");
  }
  terminate();

  const std::size_t n = 1 << 20;
  std::printf("scan of %zu ints, simulated seconds by GPU count:\n", n);
  std::printf("%-8s %12s %10s\n", "GPUs", "seconds", "speedup");
  const double t1 = timedScan(1, n);
  for (int gpus : {1, 2, 4}) {
    const double t = gpus == 1 ? t1 : timedScan(gpus, n);
    std::printf("%-8d %12.6f %9.2fx\n", gpus, t, t1 / t);
  }
  std::printf("(device-local phases overlap across GPUs on the command graph;\n"
              " the residual gap to linear is the host offset stage and block-sum\n"
              " traffic of paper Section III-C, phases 2-3)\n");

  if (!tracePath.empty()) {
    if (trace::writeChromeTrace(tracePath)) {
      std::printf("trace written to %s (open in chrome://tracing)\n", tracePath.c_str());
    }
  } else if (trace::flushToEnvPath()) {
    std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
  }
  return 0;
}
