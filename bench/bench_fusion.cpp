// Skeleton fusion speedup (docs/FUSION.md): a chain of map/zip skeletons
// fused into a single kernel vs the same chain run stage by stage.
//
// Two chains are timed on 1, 2 and 4 simulated GPUs:
//   map.map          -- x |> square |> scale-and-shift
//   map.zip.reduce   -- (x |> square) zip+ y, summed without materializing
//                       the chain result at all
//
// The unfused baseline is the same Pipeline with forceUnfused(), which runs
// each stage as an ordinary elementwise kernel through a device-resident
// intermediate.  Both variants are checked bitwise against each other before
// timing; the table reports simulated seconds (resetSimClock/simTimeSeconds),
// not wall-clock time of the reproduction.
//
//   usage: bench_fusion [--size N] [--iters N] [--smoke]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"
#include "sim/rng.hpp"

using namespace skelcl;

namespace {

constexpr const char* kSquare = "float func(float x) { return x * x + 1.0f; }";
constexpr const char* kScale = "float func(float x) { return 0.5f * x - 2.0f; }";
constexpr const char* kCombine = "float func(float a, float b) { return a * 0.25f + b; }";
constexpr const char* kAdd = "float func(float a, float b) { return a + b; }";

Vector<float> randomVector(std::size_t n, std::uint64_t seed) {
  Vector<float> v(n);
  sim::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng.uniform(-10.0, 10.0));
  }
  return v;
}

bool bitIdentical(const Vector<float>& a, const Vector<float>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(&a[0], &b[0], a.size() * sizeof(float)) == 0;
}

struct Timing {
  double unfused = 0.0;
  double fused = 0.0;
};

// Average simulated seconds per run of `chain(x)` over `iters` iterations,
// re-uploading the input each time (dataOnHostModified) so every iteration
// pays the full transfer + compute pipeline.
template <typename Run>
double timeRuns(Vector<float>& x, int iters, Run&& run) {
  run();  // warm-up: compile + first execution
  finish();
  double total = 0.0;
  for (int i = 0; i < iters; ++i) {
    x.dataOnHostModified();
    resetSimClock();
    run();
    finish();
    total += simTimeSeconds();
  }
  return total / iters;
}

Timing benchMapMap(std::size_t n, int iters) {
  Vector<float> x = randomVector(n, 0xf00d);

  Pipeline<float> fused;
  fused.map(kSquare).map(kScale);
  Pipeline<float> unfused;
  unfused.map(kSquare).map(kScale).forceUnfused();

  Vector<float> rf = fused(x);
  Vector<float> ru = unfused(x);
  if (!fused.lastRunFused() || unfused.lastRunFused() || !bitIdentical(rf, ru)) {
    std::fprintf(stderr, "map.map: fused and unfused runs disagree\n");
    std::exit(1);
  }

  Timing t;
  t.unfused = timeRuns(x, iters, [&] { Vector<float> r = unfused(x); });
  t.fused = timeRuns(x, iters, [&] { Vector<float> r = fused(x); });
  return t;
}

Timing benchMapZipReduce(std::size_t n, int iters) {
  Vector<float> x = randomVector(n, 0xbeef);
  Vector<float> y = randomVector(n, 0xcafe);

  Pipeline<float> fused;
  fused.map(kSquare).zip(y, kCombine);
  Pipeline<float> unfused;
  unfused.map(kSquare).zip(y, kCombine).forceUnfused();

  const float rf = fused.reduce(kAdd, x);
  const float ru = unfused.reduce(kAdd, x);
  if (!fused.lastRunFused() || unfused.lastRunFused() ||
      std::memcmp(&rf, &ru, sizeof(float)) != 0) {
    std::fprintf(stderr, "map.zip.reduce: fused and unfused runs disagree\n");
    std::exit(1);
  }

  Timing t;
  t.unfused = timeRuns(x, iters, [&] { (void)unfused.reduce(kAdd, x); });
  t.fused = timeRuns(x, iters, [&] { (void)fused.reduce(kAdd, x); });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  // SKELCL_TRACE=out.json shows each chain as one "fused" stage per device
  // (docs/OBSERVABILITY.md, docs/FUSION.md).
  trace::enableFromEnv();
  std::size_t size = 1u << 20;
  int iters = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      size = 1u << 14;
      iters = 2;
    } else if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      size = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    }
  }

  std::printf("skeleton fusion: %zu elements, %d iterations per cell\n\n", size, iters);
  std::printf("%-16s %5s %14s %14s %9s\n", "chain", "gpus", "unfused (s)", "fused (s)",
              "speedup");
  for (int devices : {1, 2, 4}) {
    init(sim::SystemConfig::teslaS1070(devices));
    const Timing t = benchMapMap(size, iters);
    std::printf("%-16s %5d %14.6f %14.6f %8.2fx\n", "map.map", devices, t.unfused,
                t.fused, t.unfused / t.fused);
    terminate();
  }
  for (int devices : {1, 2, 4}) {
    init(sim::SystemConfig::teslaS1070(devices));
    const Timing t = benchMapZipReduce(size, iters);
    std::printf("%-16s %5d %14.6f %14.6f %8.2fx\n", "map.zip.reduce", devices,
                t.unfused, t.fused, t.unfused / t.fused);
    terminate();
  }
  std::printf("\nfused and unfused results are bitwise identical on every configuration.\n");
  if (trace::flushToEnvPath()) {
    std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
  }
  return 0;
}
