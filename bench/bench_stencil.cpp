// Stencil scaling on multi-GPU matrices (docs/MATRIX.md): a 3x3 Gaussian
// blur and iterated Jacobi sweeps over an NxN float Matrix, distributed as
// row blocks with halo exchange between neighbouring devices.
//
// Three questions, answered in one run:
//   scaling     -- simulated seconds for 1/2/4 GPUs; near-linear because the
//                  halo traffic (2 rows per internal boundary per sweep) is
//                  tiny next to the per-device compute
//   halo cost   -- the trace collector counts every kind-"halo" record, so
//                  the exchange volume is printed next to the timings
//   recovery    -- device 2 of 4 is killed a few commands into a Jacobi run;
//                  the runtime repartitions onto the survivors, re-exchanges
//                  halos and re-executes, and the result must be bit-identical
//                  to an undisturbed 3-GPU run
//
//   usage: bench_stencil [--smoke] [--size N] [--iters K]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"
#include "sim/device_spec.hpp"

using namespace skelcl;

namespace {

// 3x3 Gaussian blur, radius 1 (the paper's stencil showcase).
constexpr const char* kGauss3 =
    "float func(__global float* m, int i, int s) {"
    "  return (m[i - s - 1] + 2.0f * m[i - s] + m[i - s + 1]"
    "        + 2.0f * m[i - 1] + 4.0f * m[i] + 2.0f * m[i + 1]"
    "        + m[i + s - 1] + 2.0f * m[i + s] + m[i + s + 1]) / 16.0f;"
    "}";

// 4-point Jacobi sweep, radius 1, clamped boundaries.
constexpr const char* kJacobi =
    "float func(__global float* m, int i, int s) {"
    "  return 0.25f * (m[i - s] + m[i - 1] + m[i + 1] + m[i + s]);"
    "}";

std::vector<float> initValues(std::size_t n) {
  std::vector<float> v(n * n);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>((i * 2654435761u) % 1000) / 500.0f - 1.0f;
  }
  return v;
}

struct StencilRun {
  double seconds = 0.0;
  std::size_t haloRecords = 0;
  std::uint64_t haloBytes = 0;
  std::vector<float> result;
};

void countHalos(StencilRun& run) {
  for (const trace::Record& r : trace::snapshot()) {
    if (r.kind == trace::Record::Kind::Halo) {
      ++run.haloRecords;
      run.haloBytes += r.bytes;
    }
  }
}

/// One blur application over an NxN matrix already resident on the devices.
StencilRun timedBlur(int gpus, std::size_t n) {
  StencilRun run;
  init(sim::SystemConfig::teslaS1070(gpus));
  {
    MapOverlap<float(float)> blur(kGauss3, 1, Padding::Neutral, 0.0f);
    Matrix<float> in(n, n, initValues(n));
    blur(in);  // warm-up: compile + upload
    finish();
    trace::clear();
    resetSimClock();
    Matrix<float> out = blur(in);
    finish();
    run.seconds = simTimeSeconds();
    countHalos(run);
    run.result = out.toStdVector();
  }
  terminate();
  return run;
}

/// `iters` ping-pong Jacobi sweeps with no host round-trip in between: every
/// sweep re-exchanges the halo rows from device-resident data.
StencilRun timedJacobi(int gpus, std::size_t n, int iters) {
  StencilRun run;
  init(sim::SystemConfig::teslaS1070(gpus));
  {
    MapOverlap<float(float)> step(kJacobi, 1, Padding::Clamp);
    Matrix<float> a(n, n, initValues(n));
    Matrix<float> b(n, n);
    step(b, a);  // warm-up: compile + upload (a is read-only, so unchanged)
    finish();
    trace::clear();
    resetSimClock();
    for (int it = 0; it < iters; ++it) {
      step(b, a);
      std::swap(a, b);
    }
    finish();
    run.seconds = simTimeSeconds();
    countHalos(run);
    run.result = a.toStdVector();
  }
  terminate();
  return run;
}

/// Jacobi on 4 GPUs with device 2 killed a few commands in; returns the
/// result plus the survivor count through `survivors`.
StencilRun killedJacobi(std::size_t n, int iters, int* survivors) {
  StencilRun run;
  init(sim::SystemConfig::teslaS1070(4));
  {
    sim::FaultPlan plan(7);
    plan.killAfterCommands(2, 5);
    setFaultPlan(std::move(plan));
    MapOverlap<float(float)> step(kJacobi, 1, Padding::Clamp);
    Matrix<float> a(n, n, initValues(n));
    Matrix<float> b(n, n);
    for (int it = 0; it < iters; ++it) {
      step(b, a);
      std::swap(a, b);
    }
    finish();
    run.seconds = simTimeSeconds();
    run.result = a.toStdVector();
    *survivors = aliveDeviceCount();
  }
  terminate();
  return run;
}

/// Undisturbed 3-GPU Jacobi -- the survivor configuration from the start.
StencilRun cleanJacobi3(std::size_t n, int iters) {
  StencilRun run;
  init(sim::SystemConfig::teslaS1070(4));
  {
    blacklistDevice(2);
    MapOverlap<float(float)> step(kJacobi, 1, Padding::Clamp);
    Matrix<float> a(n, n, initValues(n));
    Matrix<float> b(n, n);
    for (int it = 0; it < iters; ++it) {
      step(b, a);
      std::swap(a, b);
    }
    finish();
    run.result = a.toStdVector();
  }
  terminate();
  return run;
}

bool bitIdentical(const std::vector<float>& x, const std::vector<float>& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  trace::enableFromEnv();  // SKELCL_TRACE=out.json exports the last init cycle
  trace::enable();         // halo accounting needs records even without it
  std::size_t n = 512;
  int iters = 10;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // CI-sized run: small enough for the sanitizer jobs, still one halo
      // exchange per internal boundary per sweep and a mid-run device kill.
      smoke = true;
      n = 96;
      iters = 4;
    } else if (i + 1 < argc && std::strcmp(argv[i], "--size") == 0) {
      n = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (i + 1 < argc && std::strcmp(argv[i], "--iters") == 0) {
      iters = std::atoi(argv[++i]);
    }
  }

  std::printf("stencils on a %zux%zu float matrix, row-block distributed\n\n", n, n);
  bool ok = true;

  // --- Gaussian blur: one application -------------------------------------
  std::printf("3x3 Gaussian blur (radius 1, neutral boundary), one application:\n");
  std::printf("%-6s %12s %9s %14s %12s\n", "GPUs", "seconds", "speedup", "halo records",
              "halo KiB");
  const StencilRun blur1 = timedBlur(1, n);
  std::printf("%-6d %12.6f %8.2fx %14zu %12.1f\n", 1, blur1.seconds, 1.0,
              blur1.haloRecords, static_cast<double>(blur1.haloBytes) / 1024.0);
  for (int gpus : {2, 4}) {
    const StencilRun r = timedBlur(gpus, n);
    std::printf("%-6d %12.6f %8.2fx %14zu %12.1f\n", gpus, r.seconds,
                blur1.seconds / r.seconds, r.haloRecords,
                static_cast<double>(r.haloBytes) / 1024.0);
    // Per-element arithmetic is independent of the partitioning, so any
    // device count must produce the same bits -- this is the halo-exchange
    // correctness gate.
    const bool same = bitIdentical(r.result, blur1.result);
    if (!same) std::printf("       ^ DIVERGES from the 1-GPU result\n");
    ok = ok && same && r.haloRecords > 0;
    if (gpus == 4 && !smoke && blur1.seconds / r.seconds < 2.5) {
      std::printf("       ^ 4-GPU speedup below 2.5x\n");
      ok = false;
    }
  }

  // --- Jacobi sweeps: iterated halo exchange ------------------------------
  std::printf("\nJacobi (radius 1, clamped boundary), %d ping-pong sweeps:\n", iters);
  std::printf("%-6s %12s %9s %14s %12s\n", "GPUs", "seconds", "speedup", "halo records",
              "halo KiB");
  const StencilRun jac1 = timedJacobi(1, n, iters);
  std::printf("%-6d %12.6f %8.2fx %14zu %12.1f\n", 1, jac1.seconds, 1.0,
              jac1.haloRecords, static_cast<double>(jac1.haloBytes) / 1024.0);
  for (int gpus : {2, 4}) {
    const StencilRun r = timedJacobi(gpus, n, iters);
    std::printf("%-6d %12.6f %8.2fx %14zu %12.1f\n", gpus, r.seconds,
                jac1.seconds / r.seconds, r.haloRecords,
                static_cast<double>(r.haloBytes) / 1024.0);
    const bool same = bitIdentical(r.result, jac1.result);
    if (!same) std::printf("       ^ DIVERGES from the 1-GPU result\n");
    ok = ok && same && r.haloRecords > 0;
    if (gpus == 4 && !smoke && jac1.seconds / r.seconds < 2.5) {
      std::printf("       ^ 4-GPU speedup below 2.5x\n");
      ok = false;
    }
  }

  // --- device death mid-sweep ----------------------------------------------
  int survivors = 0;
  const StencilRun killed = killedJacobi(n, iters, &survivors);
  const StencilRun clean3 = cleanJacobi3(n, iters);
  const bool recovered = bitIdentical(killed.result, clean3.result);
  std::printf("\ndevice 2 of 4 killed 5 commands into the first sweep:\n");
  std::printf("  survivors: %d (expect 3)\n", survivors);
  std::printf("  result vs undisturbed 3-GPU run: %s\n",
              recovered ? "bit-identical" : "DIFFERS");
  ok = ok && survivors == 3 && recovered;

  std::printf("\ncheck: %s\n", ok ? "PASS" : "FAIL");
  if (trace::flushToEnvPath()) {
    std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
  }
  return ok ? 0 : 1;
}
