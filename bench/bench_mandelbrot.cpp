// The Mandelbrot benchmark the paper's conclusion refers to ([6]): runtime of
// SkelCL / OpenCL / CUDA on 1, 2 and 4 GPUs, plus the LOC flavor of the
// comparison (SkelCL needs one skeleton; the others need explicit device
// management).
#include <cstdio>

#include "mandel/mandel.hpp"

using namespace skelcl::mandel;

int main() {
  MandelConfig cfg;
  cfg.width = 512;
  cfg.height = 384;
  cfg.maxIterations = 64;

  std::printf("Mandelbrot %dx%d, %d max iterations -- simulated seconds\n", cfg.width,
              cfg.height, cfg.maxIterations);
  std::printf("%-10s %12s %12s %12s\n", "impl", "1 GPU", "2 GPUs", "4 GPUs");

  double skelcl1 = 0.0;
  double ocl1 = 0.0;
  double cuda1 = 0.0;
  const auto reference = mandelSeq(cfg);

  for (const char* impl : {"SkelCL", "OpenCL", "CUDA"}) {
    std::printf("%-10s", impl);
    for (int gpus : {1, 2, 4}) {
      MandelResult r;
      if (impl[0] == 'S') {
        r = mandelSkelCL(cfg, gpus);
        if (gpus == 1) skelcl1 = r.simSeconds;
      } else if (impl[0] == 'O') {
        r = mandelOcl(cfg, gpus);
        if (gpus == 1) ocl1 = r.simSeconds;
      } else {
        r = mandelCuda(cfg, gpus);
        if (gpus == 1) cuda1 = r.simSeconds;
      }
      if (r.iterations != reference.iterations) {
        std::fprintf(stderr, "%s result mismatch on %d GPUs\n", impl, gpus);
        return 1;
      }
      std::printf(" %12.6f", r.simSeconds);
    }
    std::printf("\n");
  }

  std::printf("\npaper-shape checks:\n");
  std::printf("  OpenCL/CUDA  (1 GPU): %.3f (paper ~1.2)\n", ocl1 / cuda1);
  std::printf("  SkelCL/OpenCL (1 GPU): %.3f (paper: similar results as OSEM, <1.05)\n",
              skelcl1 / ocl1);
  return 0;
}
