// Multi-tenant skeleton service benchmark (docs/SERVICE.md).
//
// Thousands of small map jobs are submitted by 8 concurrent tenant threads
// and by the same tenants serialized one after another.  The concurrent
// service wins because the admission scheduler fuses consecutive small jobs
// of one tenant into a single kernel enqueue, amortizing the per-launch
// overhead that dominates at this job size.  Reported per tenant: job count,
// p50/p95/p99 latency (simulated seconds from submission to completion) and
// the share of device time received.  A final 2:1 share-weight run checks
// the fair-share property: device time divides in the ratio of the weights.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/detail/trace.hpp"
#include "core/service.hpp"
#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

constexpr const char* kSource = "float func(float x) { return 2.0f * x + 1.0f; }";

std::vector<float> jobInput(std::size_t n, int tenant, int job) {
  std::vector<float> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<float>((i * 31 + static_cast<std::size_t>(tenant) * 7 +
                                static_cast<std::size_t>(job)) % 97);
  }
  return in;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct RunResult {
  double seconds = 0.0;                      // simulated wall time of the run
  std::vector<Service::TenantStats> tenants; // per-tenant stats
  std::vector<double> deviceTime;            // per-tenant device seconds
};

/// `tenants` client threads submit `jobsPerTenant` map jobs of `jobSize`
/// floats each through one Service, then wait for their handles.
RunResult runConcurrent(int tenants, int jobsPerTenant, std::size_t jobSize) {
  resetSimClock();
  RunResult result;
  Service service;
  std::vector<std::shared_ptr<Session>> sessions;
  for (int t = 0; t < tenants; ++t) {
    SessionOptions opts;
    opts.name = "tenant" + std::to_string(t);
    sessions.push_back(service.createSession(opts));
  }
  const double start = simTimeSeconds();
  std::vector<std::thread> clients;
  for (int t = 0; t < tenants; ++t) {
    clients.emplace_back([&, t] {
      std::vector<Service::Handle> handles;
      handles.reserve(static_cast<std::size_t>(jobsPerTenant));
      for (int j = 0; j < jobsPerTenant; ++j) {
        handles.push_back(service.submitMap(sessions[static_cast<std::size_t>(t)],
                                            kSource, jobInput(jobSize, t, j)));
      }
      for (auto& h : handles) h.wait();
    });
  }
  for (auto& c : clients) c.join();
  service.drain();
  result.seconds = simTimeSeconds() - start;
  for (int t = 0; t < tenants; ++t) {
    result.tenants.push_back(service.stats(*sessions[static_cast<std::size_t>(t)]));
    result.deviceTime.push_back(sessions[static_cast<std::size_t>(t)]->deviceTimeUsed());
  }
  return result;
}

/// Fair-share check: two saturating tenants with share weights 2:1 submit the
/// same number of identical jobs.  While *both* have backlog, stride
/// scheduling gives the heavy tenant twice the device time — measured the
/// instant the heavy tenant drains, by a sentinel job that the FIFO session
/// queue places right after the heavy tenant's last real job (on the executor
/// thread, so the snapshot is deterministic).  Waiting until everything
/// drains instead would always yield 1:1 — every job runs eventually.
double fairShareRatio(int jobsPerTenant, std::size_t jobSize) {
  resetSimClock();
  Service::Options options;
  options.batchMaxJobs = 4;  // finer scheduling granularity than the default
  Service service(options);
  auto heavy = service.createSession({"heavy", 2.0, 0});
  auto light = service.createSession({"light", 1.0, 0});
  for (int j = 0; j < jobsPerTenant; ++j) {
    service.submitMap(heavy, kSource, jobInput(jobSize, 0, j));
    service.submitMap(light, kSource, jobInput(jobSize, 1, j));
  }
  double heavyTime = 0.0, lightTime = 0.0;
  service
      .submit(heavy,
              [&] {
                heavyTime = heavy->deviceTimeUsed();
                lightTime = light->deviceTimeUsed();
              })
      .wait();
  service.drain();
  return heavyTime / lightTime;
}

/// The serialized baseline: the same tenants and jobs, but each tenant runs
/// its jobs to completion before the next tenant starts, one enqueue per job
/// (no batching) — the throughput a one-tenant-at-a-time deployment gets.
RunResult runSerialized(int tenants, int jobsPerTenant, std::size_t jobSize) {
  resetSimClock();
  RunResult result;
  const double start = simTimeSeconds();
  for (int t = 0; t < tenants; ++t) {
    auto session = createSession({"serial" + std::to_string(t), 1.0, 0});
    SessionScope scope(session);
    Service::TenantStats stats;
    Map<float(float)> map(kSource);
    for (int j = 0; j < jobsPerTenant; ++j) {
      const double submitted = simTimeSeconds();
      Vector<float> in(jobInput(jobSize, t, j));
      Vector<float> out = map(in);
      out.hostData();  // consume the result, as the service does
      finish();
      ++stats.jobsCompleted;
      ++stats.batchesRun;
      stats.latencySeconds.push_back(simTimeSeconds() - submitted);
    }
    result.tenants.push_back(std::move(stats));
    result.deviceTime.push_back(session->deviceTimeUsed());
  }
  result.seconds = simTimeSeconds() - start;
  return result;
}

/// Straggler (gray-failure) scenario: device 0 turns into a persistent 8x
/// straggler while the tenants keep submitting.  With the watchdog the
/// runtime aborts the slow commands at their deadline, degrades device 0 and
/// blacklists it after three strikes, so only the first job pays; without the
/// watchdog every job's device-0 half just runs 8x slower.  Runs in its own
/// init/terminate bracket so degrade state cannot leak between variants.
struct StragglerRun {
  double p99 = 0.0;
  double seconds = 0.0;
  std::vector<std::vector<float>> outputs;  ///< tenant-major, job-minor
};

StragglerRun runStraggler(bool watchdog, int tenants, int jobsPerTenant,
                          std::size_t jobSize) {
  init(sim::SystemConfig::teslaS1070(2));
  setWatchdogEnabled(watchdog);
  StragglerRun r;
  {
    // Warm the program cache before the fault so both variants pay it equally.
    Map<float(float)> warm(kSource);
    Vector<float> v(jobInput(jobSize, 0, 0));
    warm(v).hostData();
    finish();

    sim::FaultPlan plan;
    plan.slowDevice(0, 8.0);  // every command, until the plan is replaced
    setFaultPlan(std::move(plan));

    resetSimClock();
    Service service;
    std::vector<std::shared_ptr<Session>> sessions;
    for (int t = 0; t < tenants; ++t) {
      sessions.push_back(service.createSession({"slow" + std::to_string(t), 1.0, 0}));
    }
    const double start = simTimeSeconds();
    r.outputs.resize(static_cast<std::size_t>(tenants * jobsPerTenant));
    std::vector<double> latencies;
    std::mutex collect;
    std::vector<std::thread> clients;
    for (int t = 0; t < tenants; ++t) {
      clients.emplace_back([&, t] {
        std::vector<Service::Handle> handles;
        handles.reserve(static_cast<std::size_t>(jobsPerTenant));
        for (int j = 0; j < jobsPerTenant; ++j) {
          handles.push_back(service.submitMap(sessions[static_cast<std::size_t>(t)],
                                              kSource, jobInput(jobSize, t, j)));
        }
        for (int j = 0; j < jobsPerTenant; ++j) {
          handles[static_cast<std::size_t>(j)].wait();
          std::lock_guard<std::mutex> lock(collect);
          r.outputs[static_cast<std::size_t>(t * jobsPerTenant + j)] =
              handles[static_cast<std::size_t>(j)].output();
          latencies.push_back(handles[static_cast<std::size_t>(j)].latencySeconds());
        }
      });
    }
    for (auto& c : clients) c.join();
    service.drain();
    r.seconds = simTimeSeconds() - start;
    r.p99 = percentile(latencies, 0.99);
  }
  terminate();
  return r;
}

void printRun(const char* title, const RunResult& r, int jobs) {
  std::printf("%s: %d jobs in %.3f simulated ms -> %.0f jobs/s\n", title, jobs,
              r.seconds * 1e3, static_cast<double>(jobs) / r.seconds);
  std::printf("  %-9s %6s %8s %12s %12s %12s %14s\n", "tenant", "jobs", "batches",
              "p50 (us)", "p95 (us)", "p99 (us)", "device (ms)");
  for (std::size_t t = 0; t < r.tenants.size(); ++t) {
    const auto& s = r.tenants[t];
    std::printf("  tenant%-3zu %6llu %8llu %12.1f %12.1f %12.1f %14.3f\n", t,
                static_cast<unsigned long long>(s.jobsCompleted),
                static_cast<unsigned long long>(s.batchesRun),
                percentile(s.latencySeconds, 0.50) * 1e6,
                percentile(s.latencySeconds, 0.95) * 1e6,
                percentile(s.latencySeconds, 0.99) * 1e6, r.deviceTime[t] * 1e3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int tenants = 8;
  const int jobsPerTenant = smoke ? 40 : 250;
  const std::size_t jobSize = 256;  // small: launch overhead dominates

  init(sim::SystemConfig::teslaS1070(2));
  // SKELCL_TRACE=out.json records every command with its session id;
  // chrome://tracing shows one lane group per tenant.
  trace::enableFromEnv();
  int failures = 0;
  {
    std::printf("multi-tenant service: %d tenants x %d map jobs of %zu floats\n\n",
                tenants, jobsPerTenant, jobSize);

    // Warm the shared program cache so neither run pays clBuildProgram.
    {
      Map<float(float)> warm(kSource);
      Vector<float> v(jobInput(jobSize, 0, 0));
      warm(v).hostData();
      finish();
    }

    const RunResult serial = runSerialized(tenants, jobsPerTenant, jobSize);
    printRun("serialized (one enqueue per job)", serial, tenants * jobsPerTenant);
    std::printf("\n");

    const RunResult conc = runConcurrent(tenants, jobsPerTenant, jobSize);
    printRun("concurrent (fair-share + batching)", conc, tenants * jobsPerTenant);

    const double speedup = serial.seconds / conc.seconds;
    std::printf("\naggregate throughput: %.2fx the serialized baseline\n", speedup);
    if (speedup < 2.0) {
      std::printf("FAIL: expected >= 2x\n");
      ++failures;
    }

    const double ratio = fairShareRatio(jobsPerTenant, jobSize);
    std::printf("\nfair share with 2:1 weights: device time ratio %.2f (want ~2)\n", ratio);
    if (ratio < 1.5 || ratio > 2.7) {
      std::printf("FAIL: fair-share ratio out of range\n");
      ++failures;
    }
  }
  if (trace::flushToEnvPath()) {
    std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
  }
  terminate();

  // Gray-failure scenario: persistent 8x straggler on device 0.
  const int stragglerJobs = smoke ? 20 : 100;
  std::printf("\nstraggler scenario: dev0 a persistent 8x straggler, %d tenants x %d jobs\n",
              tenants, stragglerJobs);
  const StragglerRun guarded = runStraggler(true, tenants, stragglerJobs, jobSize);
  const StragglerRun unguarded = runStraggler(false, tenants, stragglerJobs, jobSize);
  std::printf("  %-28s %12s %14s\n", "variant", "p99 (us)", "total (ms)");
  std::printf("  %-28s %12.1f %14.3f\n", "watchdog on (degrade)", guarded.p99 * 1e6,
              guarded.seconds * 1e3);
  std::printf("  %-28s %12.1f %14.3f\n", "watchdog off (ride it out)",
              unguarded.p99 * 1e6, unguarded.seconds * 1e3);
  const double p99Ratio = unguarded.p99 / guarded.p99;
  std::printf("  p99 improvement with watchdog: %.2fx\n", p99Ratio);
  if (p99Ratio < 3.0) {
    std::printf("FAIL: expected the watchdog to improve straggler p99 >= 3x\n");
    ++failures;
  }
  bool identical = guarded.outputs.size() == unguarded.outputs.size();
  for (std::size_t i = 0; identical && i < guarded.outputs.size(); ++i) {
    identical = guarded.outputs[i].size() == unguarded.outputs[i].size() &&
                std::memcmp(guarded.outputs[i].data(), unguarded.outputs[i].data(),
                            guarded.outputs[i].size() * sizeof(float)) == 0;
  }
  std::printf("  job results with vs without watchdog: %s\n",
              identical ? "bit-identical" : "DIFFER");
  if (!identical) ++failures;

  return failures == 0 ? 0 : 1;
}
