// dOpenCL cluster benchmark (paper Section V): the same SkelCL workload on a
// growing cluster of 4-GPU nodes, comparing the flat (single-level) and
// two-level tree collective shapes.
//
// The flat reduce downloads every device's partials through the client's
// single GbE link — deviceCount latency-serialized network transfers.  The
// tree shape combines partials node-locally over PCIe first, so only one
// value per node crosses the network.  Results are bit-identical (the
// workload sums small floats, exact in fp32), so the table isolates the cost
// of collective shape from any numeric effect.
//
// --smoke: runs the 8-node x 4-GPU leg both ways and exits nonzero if the
// results diverge bitwise or the tree reduce is not at least 2.5x faster.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"
#include "docl/docl.hpp"

using namespace skelcl;

namespace {

constexpr std::size_t kSize = 1 << 18;

struct Result {
  double mapSeconds = 0.0;
  double reduceSeconds = 0.0;
  double scanSeconds = 0.0;
  float reduceValue = 0.0f;
};

Result runWorkload() {
  Result res;
  Map<float(float)> heavy(
      "float func(float x) { float s = x;"
      " for (int i = 0; i < 48; ++i) s = s * 0.5f + 1.0f; return s; }");
  Reduce<float> sum("float func(float a, float b) { return a + b; }");
  Scan<float> prefix("float func(float a, float b) { return a + b; }");
  Vector<float> v(kSize);
  // i % 9 keeps every partial sum below 2^24, so float addition is exact and
  // flat vs tree reductions must agree bit for bit.
  for (std::size_t i = 0; i < kSize; ++i) v[i] = static_cast<float>(i % 9);

  {
    // Warm-up: compile all three skeleton programs outside the timed legs so
    // the table measures steady-state collective cost, not one-time JIT.
    Vector<float> warm(1024);
    for (std::size_t i = 0; i < warm.size(); ++i) warm[i] = 1.0f;
    Vector<float> warmMapped = heavy(warm);
    sum(warmMapped);
    prefix(warm);
    finish();
  }
  heavy(v);  // warm-up: distribute the real input
  finish();
  v.dataOnHostModified();
  resetSimClock();
  Vector<float> mapped = heavy(v);
  finish();
  res.mapSeconds = simTimeSeconds();

  resetSimClock();
  res.reduceValue = sum(mapped);
  finish();
  res.reduceSeconds = simTimeSeconds();

  resetSimClock();
  Vector<float> scanned = prefix(v);
  finish();
  scanned.toStdVector();  // include the result download in the scan leg
  res.scanSeconds = simTimeSeconds();
  return res;
}

Result runCluster(int nodes, int gpusPerNode, bool tree) {
  ::setenv("SKELCL_TREE_COLLECTIVES", tree ? "1" : "0", 1);
  docl::DistributedConfig cfg;
  for (int s = 0; s < nodes; ++s) {
    cfg.servers.push_back(sim::SystemConfig::teslaS1070(gpusPerNode));
  }
  docl::initSkelCL(cfg);
  const Result res = runWorkload();
  terminate();
  ::unsetenv("SKELCL_TREE_COLLECTIVES");
  return res;
}

int smoke() {
  const Result flat = runCluster(8, 4, /*tree=*/false);
  const Result tree = runCluster(8, 4, /*tree=*/true);
  const double speedup = flat.reduceSeconds / tree.reduceSeconds;
  std::printf("smoke: 8 nodes x 4 GPUs\n");
  std::printf("  flat reduce %.6f s, tree reduce %.6f s (%.2fx)\n", flat.reduceSeconds,
              tree.reduceSeconds, speedup);
  std::printf("  flat result %.9g, tree result %.9g\n", static_cast<double>(flat.reduceValue),
              static_cast<double>(tree.reduceValue));
  if (std::memcmp(&flat.reduceValue, &tree.reduceValue, sizeof(float)) != 0) {
    std::printf("FAIL: flat and tree reduce results are not bit-identical\n");
    return 1;
  }
  if (speedup < 2.5) {
    std::printf("FAIL: tree reduce speedup %.2fx below the 2.5x floor\n", speedup);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // SKELCL_TRACE=out.json exports the last init cycle; lane names carry
  // "(node N)" tags so the tree shape of the collectives is visible.
  trace::enableFromEnv();
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    const int rc = smoke();
    const char* tracePath = std::getenv("SKELCL_TRACE");
    if (tracePath != nullptr && tracePath[0] != '\0' &&
        trace::writeChromeTrace(tracePath)) {
      std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
    }
    return rc;
  }

  std::printf("identical SkelCL program on a growing docl cluster (4 GPUs per node)\n");
  std::printf("(map: compute-heavy; reduce/scan: collective-shape bound)\n\n");
  std::printf("%-8s %8s | %12s | %12s %12s %8s | %12s %12s\n", "nodes", "devices",
              "map (s)", "flat red (s)", "tree red (s)", "speedup", "flat scan (s)",
              "tree scan (s)");
  for (const int nodes : {1, 2, 4, 8}) {
    const Result flat = runCluster(nodes, 4, /*tree=*/false);
    const Result tree = runCluster(nodes, 4, /*tree=*/true);
    const double speedup = flat.reduceSeconds / tree.reduceSeconds;
    std::printf("%-8d %8d | %12.6f | %12.6f %12.6f %7.2fx | %12.6f %12.6f\n", nodes,
                nodes * 4, tree.mapSeconds, flat.reduceSeconds, tree.reduceSeconds, speedup,
                flat.scanSeconds, tree.scanSeconds);
    if (std::memcmp(&flat.reduceValue, &tree.reduceValue, sizeof(float)) != 0) {
      std::printf("WARNING: flat/tree reduce results diverge at %d nodes\n", nodes);
    }
  }
  std::printf("\nflat collectives serialize one network transfer per device on the\n"
              "client NIC; the tree shape combines node-locally over PCIe and moves\n"
              "one value per node -- same program, same results, shorter critical path\n");
  const char* tracePath = std::getenv("SKELCL_TRACE");
  if (tracePath != nullptr && tracePath[0] != '\0' &&
      trace::writeChromeTrace(tracePath)) {
    std::printf("trace written to $SKELCL_TRACE (open in chrome://tracing)\n");
  }
  return 0;
}
