// dOpenCL benchmark (paper Section V): the same SkelCL workload on (a) a
// local 4-GPU machine, (b) the same 4 GPUs behind Gigabit Ethernet, and
// (c) the full 8-GPU laboratory aggregation.  Shows the drop-in property and
// where the network hop costs.
#include <cstdio>
#include <functional>

#include "core/skelcl.hpp"
#include "docl/docl.hpp"

using namespace skelcl;

namespace {

struct Workload {
  double mapSeconds = 0.0;
  double reduceSeconds = 0.0;
};

Workload runWorkload() {
  Workload w;
  constexpr std::size_t kSize = 1 << 18;
  Map<float(float)> heavy(
      "float func(float x) { float s = x;"
      " for (int i = 0; i < 48; ++i) s = s * 0.5f + 1.0f; return s; }");
  Reduce<float> sum("float func(float a, float b) { return a + b; }");
  Vector<float> v(kSize);
  for (std::size_t i = 0; i < kSize; ++i) v[i] = static_cast<float>(i % 9);

  heavy(v);  // warm-up: compile
  finish();
  v.dataOnHostModified();
  resetSimClock();
  Vector<float> mapped = heavy(v);
  finish();
  w.mapSeconds = simTimeSeconds();

  resetSimClock();
  sum(mapped);
  finish();
  w.reduceSeconds = simTimeSeconds();
  return w;
}

}  // namespace

int main() {
  struct Setup {
    const char* name;
    std::function<void()> initFn;
  };
  const Setup setups[] = {
      {"local 4 GPUs", [] { init(sim::SystemConfig::teslaS1070(4)); }},
      {"dOpenCL 1 node x 4 GPUs",
       [] {
         docl::DistributedConfig cfg;
         cfg.servers.push_back(sim::SystemConfig::teslaS1070(4));
         docl::initSkelCL(cfg);
       }},
      {"dOpenCL 2 nodes x 2 GPUs",
       [] {
         docl::DistributedConfig cfg;
         cfg.servers.push_back(sim::SystemConfig::dualGpuServer());
         cfg.servers.push_back(sim::SystemConfig::dualGpuServer());
         docl::initSkelCL(cfg);
       }},
      {"dOpenCL lab (8 GPUs)", [] { docl::initSkelCL(docl::laboratorySetup()); }},
  };

  std::printf("identical SkelCL program on local vs distributed devices\n");
  std::printf("(map: compute-heavy with one upload; reduce: transfer-light)\n\n");
  std::printf("%-28s %8s %14s %14s\n", "setup", "devices", "map (s)", "reduce (s)");
  for (const Setup& setup : setups) {
    setup.initFn();
    const int devices = deviceCount();
    const Workload w = runWorkload();
    terminate();
    std::printf("%-28s %8d %14.6f %14.6f\n", setup.name, devices, w.mapSeconds,
                w.reduceSeconds);
  }
  std::printf("\nthe network hop costs where data moves (uploads, partial downloads);\n"
              "the programming model is unchanged -- dOpenCL is a drop-in replacement\n");
  return 0;
}
