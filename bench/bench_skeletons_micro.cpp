// Micro-benchmarks of the four skeletons (google-benchmark).  The reported
// time is the *simulated* device time per skeleton execution (UseManualTime),
// which is the quantity the paper's evaluation is about; wall-clock time of
// the reproduction itself is not meaningful.
#include <benchmark/benchmark.h>

#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

class SkeletonFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    init(sim::SystemConfig::teslaS1070(static_cast<int>(state.range(0))));
  }
  void TearDown(const benchmark::State&) override { terminate(); }
};

constexpr std::size_t kSize = 1 << 16;

BENCHMARK_DEFINE_F(SkeletonFixture, Map)(benchmark::State& state) {
  Map<float(float)> inc("float func(float x) { return x + 1.0f; }");
  Vector<float> v(kSize);
  inc(v);  // compile
  finish();
  for (auto _ : state) {
    v.dataOnHostModified();
    resetSimClock();
    inc(v);
    finish();
    state.SetIterationTime(simTimeSeconds());
  }
  state.counters["transfers"] = static_cast<double>(simStats().transfers);
}
BENCHMARK_REGISTER_F(SkeletonFixture, Map)->Arg(1)->Arg(2)->Arg(4)->UseManualTime()->MinTime(0.02);

BENCHMARK_DEFINE_F(SkeletonFixture, Zip)(benchmark::State& state) {
  Zip<float> add("float func(float a, float b) { return a + b; }");
  Vector<float> a(kSize);
  Vector<float> b(kSize);
  add(a, b);
  finish();
  for (auto _ : state) {
    a.dataOnHostModified();
    b.dataOnHostModified();
    resetSimClock();
    add(a, b);
    finish();
    state.SetIterationTime(simTimeSeconds());
  }
}
BENCHMARK_REGISTER_F(SkeletonFixture, Zip)->Arg(1)->Arg(2)->Arg(4)->UseManualTime()->MinTime(0.02);

BENCHMARK_DEFINE_F(SkeletonFixture, Reduce)(benchmark::State& state) {
  Reduce<float> sum("float func(float a, float b) { return a + b; }");
  Vector<float> v(kSize);
  for (std::size_t i = 0; i < kSize; ++i) v[i] = 1.0f;
  sum(v);
  finish();
  for (auto _ : state) {
    v.dataOnHostModified();
    resetSimClock();
    benchmark::DoNotOptimize(sum(v));
    finish();
    state.SetIterationTime(simTimeSeconds());
  }
}
BENCHMARK_REGISTER_F(SkeletonFixture, Reduce)->Arg(1)->Arg(2)->Arg(4)->UseManualTime()->MinTime(0.02);

BENCHMARK_DEFINE_F(SkeletonFixture, Scan)(benchmark::State& state) {
  Scan<int> scan("int func(int a, int b) { return a + b; }");
  Vector<int> v(kSize);
  for (std::size_t i = 0; i < kSize; ++i) v[i] = 1;
  scan(v);
  finish();
  for (auto _ : state) {
    v.dataOnHostModified();
    resetSimClock();
    scan(v);
    finish();
    state.SetIterationTime(simTimeSeconds());
  }
}
BENCHMARK_REGISTER_F(SkeletonFixture, Scan)->Arg(1)->Arg(2)->Arg(4)->UseManualTime()->MinTime(0.02);

// SkelCL's abstraction overhead vs a hand-rolled socl map with identical
// semantics (the "<5%" claim at micro scale).
void BM_RawOclMapBaseline(benchmark::State& state) {
  ocl::Platform platform(sim::SystemConfig::teslaS1070(1));
  ocl::Context ctx(platform.devices());
  ocl::CommandQueue queue(ctx, platform.device(0));
  ocl::Program program(ctx,
                       "__kernel void inc(__global float* d, int n) {"
                       "  int i = get_global_id(0); if (i < n) d[i] = d[i] + 1.0f; }");
  program.build();
  ocl::Kernel kernel(program, "inc");
  std::vector<float> host(kSize, 0.0f);
  ocl::Buffer buf(ctx, platform.device(0), kSize * sizeof(float));
  for (auto _ : state) {
    platform.system().resetClock();
    queue.resetClock();
    queue.enqueueWriteBuffer(buf, 0, kSize * sizeof(float), host.data());
    kernel.setArg(0, buf);
    kernel.setArg(1, static_cast<std::int32_t>(kSize));
    queue.enqueueNDRangeKernel(kernel, kSize);
    queue.finish();
    state.SetIterationTime(platform.system().hostNow());
  }
}
BENCHMARK(BM_RawOclMapBaseline)->UseManualTime()->MinTime(0.02);

}  // namespace

BENCHMARK_MAIN();
