// Semantics tests for the four skeletons across device counts and sizes,
// including the paper's worked examples (Listing 1 SAXPY, Figure 2 scan).
#include <gtest/gtest.h>

#include <numeric>

#include "core/skelcl.hpp"
#include "sim/rng.hpp"

using namespace skelcl;

namespace {

// --- parameterized over (deviceCount, size) --------------------------------

class SkeletonP : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(std::get<0>(GetParam()))); }
  void TearDown() override { terminate(); }
  std::size_t n() const { return std::get<1>(GetParam()); }

  Vector<float> randomVector(std::uint64_t seed) const {
    sim::Rng rng(seed);
    Vector<float> v(n());
    for (std::size_t i = 0; i < n(); ++i) v[i] = static_cast<float>(rng.uniform(-8.0, 8.0));
    return v;
  }
};

INSTANTIATE_TEST_SUITE_P(
    DevicesAndSizes, SkeletonP,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{7},
                                         std::size_t{100}, std::size_t{1001})),
    [](const auto& info) {
      return "gpus" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(SkeletonP, MapMatchesStdTransform) {
  Map<float(float)> doubler("float func(float x) { return 2.0f * x + 1.0f; }");
  Vector<float> in = randomVector(1);
  Vector<float> out = doubler(in);
  ASSERT_EQ(out.size(), n());
  for (std::size_t i = 0; i < n(); ++i) {
    EXPECT_FLOAT_EQ(out[i], 2.0f * in[i] + 1.0f) << i;
  }
}

TEST_P(SkeletonP, ZipMatchesElementwise) {
  Zip<float(float, float)> sub("float func(float a, float b) { return a - b; }");
  Vector<float> a = randomVector(2);
  Vector<float> b = randomVector(3);
  Vector<float> out = sub(a, b);
  for (std::size_t i = 0; i < n(); ++i) EXPECT_FLOAT_EQ(out[i], a[i] - b[i]) << i;
}

TEST_P(SkeletonP, ReduceAddMatchesStdAccumulate) {
  Reduce<int(int)> sum("int func(int a, int b) { return a + b; }");
  Vector<int> v(n());
  for (std::size_t i = 0; i < n(); ++i) v[i] = static_cast<int>(i % 17) - 8;
  const int expected = std::accumulate(v.begin(), v.end(), 0);
  EXPECT_EQ(sum(v), expected);
}

TEST_P(SkeletonP, ReduceNonCommutativeAssociativeOperator) {
  // 2x2 matrix-like fold collapsed to scalars is hard; use string-free
  // associative, non-commutative op on ints: f(a, b) = a * 31 + b (Horner
  // over base 31) -- associativity does NOT hold for this op, so instead use
  // min composed with order-sensitive tie-breaking... Simplest truly
  // associative non-commutative scalar op: f(a, b) = b (right projection).
  Reduce<int(int)> last("int func(int a, int b) { return b; }");
  Vector<int> v(n());
  for (std::size_t i = 0; i < n(); ++i) v[i] = static_cast<int>(i) + 5;
  EXPECT_EQ(last(v), static_cast<int>(n()) + 4);  // the final element, order preserved
}

TEST_P(SkeletonP, ReduceMaxMatchesStdMaxElement) {
  Reduce<float(float)> maxr("float func(float a, float b) { return max(a, b); }");
  Vector<float> v = randomVector(4);
  EXPECT_FLOAT_EQ(maxr(v), *std::max_element(v.begin(), v.end()));
}

TEST_P(SkeletonP, ScanMatchesStdPartialSum) {
  Scan<int(int, int)> prefix("int func(int a, int b) { return a + b; }");
  Vector<int> v(n());
  for (std::size_t i = 0; i < n(); ++i) v[i] = static_cast<int>(i % 7) + 1;
  Vector<int> out = prefix(v);
  std::vector<int> expected(n());
  std::partial_sum(v.begin(), v.end(), expected.begin());
  ASSERT_EQ(out.size(), n());
  for (std::size_t i = 0; i < n(); ++i) EXPECT_EQ(out[i], expected[i]) << i;
}

TEST_P(SkeletonP, ScanNonCommutativeOperator) {
  // right projection: inclusive scan returns the input itself
  Scan<int(int, int)> scan("int func(int a, int b) { return b; }");
  Vector<int> v(n());
  for (std::size_t i = 0; i < n(); ++i) v[i] = static_cast<int>(3 * i);
  Vector<int> out = scan(v);
  for (std::size_t i = 0; i < n(); ++i) EXPECT_EQ(out[i], static_cast<int>(3 * i)) << i;
}

TEST_P(SkeletonP, MapIndexProducesGlobalIndices) {
  Map<int(Index)> identity("int func(int i) { return i; }");
  IndexVector idx(n());
  Vector<int> out = identity(idx);
  for (std::size_t i = 0; i < n(); ++i) EXPECT_EQ(out[i], static_cast<int>(i)) << i;
}

TEST_P(SkeletonP, MapChainStaysOnDevice) {
  // map feeding map: the intermediate vector must not be downloaded (the
  // lazy-copying optimization of paper II-B).
  Map<float(float)> inc("float func(float x) { return x + 1.0f; }");
  Vector<float> in = randomVector(7);
  resetSimClock();
  Vector<float> mid = inc(in);
  const auto afterFirst = simStats().transfers;
  Vector<float> out = inc(mid);
  // The second map adds no transfers at all: input parts are already device-
  // resident and the output is fresh.
  EXPECT_EQ(simStats().transfers, afterFirst);
  for (std::size_t i = 0; i < n(); ++i) EXPECT_FLOAT_EQ(out[i], in[i] + 2.0f) << i;
}

// --- fixed-configuration tests ----------------------------------------------

class SkeletonTest : public ::testing::Test {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(4)); }
  void TearDown() override { terminate(); }
};

TEST_F(SkeletonTest, Listing1Saxpy) {
  // The paper's Listing 1, verbatim semantics: zip with an additional scalar.
  Zip<float> saxpy(
      "float func(float x, float y, float a)"
      "{ return a*x+y; }");
  const std::size_t size = 512;
  Vector<float> X(size), Y(size);
  for (std::size_t i = 0; i < size; ++i) {
    X[i] = static_cast<float>(i);
    Y[i] = static_cast<float>(2 * i);
  }
  const float a = 2.5f;
  Y = saxpy(X, Y, a);
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_FLOAT_EQ(Y[i], 2.5f * i + 2.0f * i) << i;
  }
}

TEST_F(SkeletonTest, Figure2ScanExample) {
  // Figure 2: scan of [1..16] with + over four GPUs.
  Scan<int> scan("int func(int a, int b) { return a + b; }");
  Vector<int> v(16);
  for (int i = 0; i < 16; ++i) v[static_cast<std::size_t>(i)] = i + 1;
  Vector<int> out = scan(v);
  const int expected[] = {1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 66, 78, 91, 105, 120, 136};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], expected[i]) << i;
}

TEST_F(SkeletonTest, AdditionalVectorArgument) {
  // A vector passed as an additional argument must carry an explicit
  // distribution; with copy distribution every device sees the whole table.
  Map<float(float)> gather(
      "float func(float x, __global float* table) { return table[(int)x]; }");
  Vector<float> table({10.0f, 11.0f, 12.0f, 13.0f});
  table.setDistribution(Distribution::copy());
  Vector<float> idx({3.0f, 0.0f, 2.0f, 1.0f, 3.0f, 2.0f, 0.0f, 1.0f});
  Vector<float> out = gather(idx, table);
  const float expected[] = {13, 10, 12, 11, 13, 12, 10, 11};
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(out[i], expected[i]) << i;
}

TEST_F(SkeletonTest, AdditionalVectorWithoutDistributionThrows) {
  Map<float(float)> gather(
      "float func(float x, __global float* table) { return table[(int)x]; }");
  Vector<float> table({1.0f, 2.0f});
  Vector<float> idx({0.0f, 1.0f});
  EXPECT_THROW(gather(idx, table), UsageError);
}

TEST_F(SkeletonTest, SizesTokenDeliversPartSizes) {
  // Every work item reports its device's part size of the data vector.
  Map<int(Index)> partSize("int func(int i, int localSize) { return localSize; }");
  Vector<float> data(100);
  data.setDistribution(Distribution::block());
  IndexVector idx(100);
  idx.setDistribution(Distribution::block());
  Vector<int> out = partSize(idx, data.sizes());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], 25) << i;  // 100 / 4 GPUs
}

TEST_F(SkeletonTest, InPlaceZipViaOut) {
  // zipUpdate(f, c, f) from Listing 3: output aliases an input.
  Zip<float> update("float func(float f, float c) { return c > 0.0f ? f * c : f; }");
  Vector<float> f({1.0f, 2.0f, 3.0f, 4.0f});
  Vector<float> c({2.0f, 0.0f, -1.0f, 3.0f});
  update(out(f), f, c);
  EXPECT_FLOAT_EQ(f[0], 2.0f);
  EXPECT_FLOAT_EQ(f[1], 2.0f);
  EXPECT_FLOAT_EQ(f[2], 3.0f);
  EXPECT_FLOAT_EQ(f[3], 12.0f);
}

TEST_F(SkeletonTest, MapOutputInheritsInputDistribution) {
  Map<float(float)> id("float func(float x) { return x; }");
  Vector<float> in(64);
  in.setDistribution(Distribution::single(2));
  Vector<float> out = id(in);
  EXPECT_TRUE(out.distribution() == Distribution::single(2));
}

TEST_F(SkeletonTest, MapOnCopyDistributedRunsOnAllDevices) {
  Map<float(float)> inc("float func(float x) { return x + 1.0f; }");
  Vector<float> in(32);
  in.setDistribution(Distribution::copy());
  resetSimClock();
  Vector<float> out = inc(in);
  EXPECT_TRUE(out.distribution() == Distribution::copy());
  // one kernel launch per device
  EXPECT_EQ(simStats().kernel_launches, 4u);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_FLOAT_EQ(out[i], 1.0f);
}

TEST_F(SkeletonTest, ZipBothSingleSameDeviceStaysSingle) {
  // Paper III-C: matching single distributions on the same GPU are kept.
  Zip<float> add("float func(float a, float b) { return a + b; }");
  Vector<float> a(16), b(16);
  a.setDistribution(Distribution::single(2));
  b.setDistribution(Distribution::single(2));
  Vector<float> out = add(a, b);
  EXPECT_TRUE(a.distribution() == Distribution::single(2));
  EXPECT_TRUE(out.distribution() == Distribution::single(2));
}

TEST_F(SkeletonTest, ZipSingleOnDifferentDevicesForcedToBlock) {
  // ... but single distributions on different GPUs violate the requirement
  // and both inputs are changed to block.
  Zip<float> add("float func(float a, float b) { return a + b; }");
  Vector<float> a(16), b(16);
  a.setDistribution(Distribution::single(0));
  b.setDistribution(Distribution::single(3));
  add(a, b);
  EXPECT_TRUE(a.distribution() == Distribution::block());
  EXPECT_TRUE(b.distribution() == Distribution::block());
}

TEST_F(SkeletonTest, ZipMismatchedDistributionsForcedToBlock) {
  // Paper III-C: if zip inputs disagree, SkelCL changes both to block.
  Zip<float> add("float func(float a, float b) { return a + b; }");
  Vector<float> a(40), b(40);
  for (std::size_t i = 0; i < 40; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = 1.0f;
  }
  a.setDistribution(Distribution::single(1));
  b.setDistribution(Distribution::copy());
  Vector<float> out = add(a, b);
  EXPECT_TRUE(a.distribution() == Distribution::block());
  EXPECT_TRUE(b.distribution() == Distribution::block());
  for (std::size_t i = 0; i < 40; ++i) EXPECT_FLOAT_EQ(out[i], i + 1.0f);
}

TEST_F(SkeletonTest, ZipSizeMismatchThrows) {
  Zip<float> add("float func(float a, float b) { return a + b; }");
  Vector<float> a(4), b(5);
  EXPECT_THROW(add(a, b), UsageError);
}

TEST_F(SkeletonTest, ReduceEmptyThrows) {
  Reduce<float> sum("float func(float a, float b) { return a + b; }");
  Vector<float> v(0);
  EXPECT_THROW(sum(v), UsageError);
}

TEST_F(SkeletonTest, BrokenUserFunctionSurfacesBuildError) {
  Map<float(float)> broken("float func(float x) { return undeclared_name; }");
  Vector<float> v(4);
  EXPECT_THROW(broken(v), ocl::BuildError);
}

TEST_F(SkeletonTest, ProgramCacheCompilesOnce) {
  Map<float(float)> inc("float func(float x) { return x + 1.0f; }");
  Vector<float> a(16), b(16);
  inc(a);
  const double t1 = simTimeSeconds();
  resetSimClock();
  inc(b);  // same generated source: cache hit, no compilation charge
  const double t2 = simTimeSeconds();
  EXPECT_LT(t2, t1);
}

TEST_F(SkeletonTest, MapFeedingReduceAvoidsTransfersEntirely) {
  // The paper's flagship lazy-copying example (II-B): a map's output passed
  // to reduce stays on the GPUs; only the small partial vectors move.
  Map<float(float)> square("float func(float x) { return x * x; }");
  Reduce<float> sum("float func(float a, float b) { return a + b; }");
  Vector<float> v(1024);
  for (std::size_t i = 0; i < 1024; ++i) v[i] = 1.0f;

  Vector<float> squared = square(v);      // uploads v, computes on device
  const auto uploads = simStats().transfers;
  const float result = sum(squared);      // no re-upload of `squared`
  EXPECT_FLOAT_EQ(result, 1024.0f);
  // Only the partial downloads were added (one read per device).
  EXPECT_EQ(simStats().transfers, uploads + 4);
}

TEST_F(SkeletonTest, ScanInPlaceViaOut) {
  Scan<int> scan("int func(int a, int b) { return a + b; }");
  Vector<int> v({1, 1, 1, 1, 1, 1, 1, 1});
  scan(out(v), v);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(v[i], static_cast<int>(i) + 1);
}

TEST_F(SkeletonTest, DoubleElementsSupported) {
  Reduce<double> sum("double func(double a, double b) { return a + b; }");
  Vector<double> v(100);
  for (std::size_t i = 0; i < 100; ++i) v[i] = 0.1;
  EXPECT_NEAR(sum(v), 10.0, 1e-12);
}

TEST_F(SkeletonTest, UintElementsSupported) {
  Map<std::uint32_t(std::uint32_t)> shift("uint func(uint x) { return x >> 1; }");
  Vector<std::uint32_t> v({8u, 0x80000000u});
  Vector<std::uint32_t> out = shift(v);
  EXPECT_EQ(out[0], 4u);
  EXPECT_EQ(out[1], 0x40000000u);
}

TEST_F(SkeletonTest, StructVectorAsAdditionalArgument) {
  struct P2 {
    float x;
    float y;
  };
  registerKernelType<P2>("P2", "typedef struct { float x; float y; } P2;");
  Map<float(Index)> norms(
      "float func(int i, __global P2* pts) {"
      "  return sqrt(pts[i].x * pts[i].x + pts[i].y * pts[i].y);"
      "}");
  Vector<P2> pts(3);
  pts[0] = {3.0f, 4.0f};
  pts[1] = {6.0f, 8.0f};
  pts[2] = {0.0f, 5.0f};
  pts.setDistribution(Distribution::copy());
  IndexVector idx(3);
  idx.setDistribution(Distribution::single(0));
  Vector<float> out = norms(idx, pts);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 10.0f);
  EXPECT_FLOAT_EQ(out[2], 5.0f);
}

}  // namespace
