// Static scheduling for heterogeneous systems (paper Section V).
#include <gtest/gtest.h>

#include <numeric>

#include "core/skelcl.hpp"
#include "sched/scheduler.hpp"

using namespace skelcl;
using namespace skelcl::sched;

namespace {

const char* kHeavyFunc =
    "float func(float x) { float s = x; for (int i = 0; i < 32; ++i) s = s * 0.5f + 1.0f;"
    " return s; }";
const char* kLightFunc = "float func(float x) { return x + 1.0f; }";

TEST(Sched, MeasureUserFunctionCountsInstructions) {
  const auto heavy = measureUserFunction(kHeavyFunc);
  const auto light = measureUserFunction(kLightFunc);
  EXPECT_GT(heavy.instructionsPerElement, 5.0 * light.instructionsPerElement);
  EXPECT_EQ(heavy.samples, 64u);
}

TEST(Sched, MeasureRejectsBadFunctions) {
  EXPECT_THROW(measureUserFunction("float notfunc(float x) { return x; }"), Error);
  EXPECT_THROW(measureUserFunction("float func(float a, float b, float c) { return a; }"),
               Error);
}

TEST(Sched, PredictThroughputScalesWithDeviceRate) {
  const auto cost = measureUserFunction(kHeavyFunc);
  const auto lab = sim::SystemConfig::heterogeneousLab();
  const double cpu = predictThroughput(lab.devices[0], cost);   // Xeon
  const double big = predictThroughput(lab.devices[1], cost);   // GTX480-class
  const double small = predictThroughput(lab.devices[2], cost); // GT240-class
  EXPECT_GT(big, small);
  EXPECT_GT(small, cpu);  // even the small GPU out-runs the 4-core CPU
}

TEST(Sched, StaticWeightsAreProportionalAndNormalized) {
  const auto cost = measureUserFunction(kHeavyFunc);
  const auto lab = sim::SystemConfig::heterogeneousLab();
  const auto weights = staticWeights(lab.devices, cost);
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_NEAR(std::accumulate(weights.begin(), weights.end(), 0.0), 1.0, 1e-12);
  // GTX480-class (480 cores @ 1.4 GHz) vs GT240-class (96 @ 1.34): ~5.2x
  EXPECT_NEAR(weights[1] / weights[2], 480.0 * 1.40 / (96.0 * 1.34), 0.05);
}

TEST(Sched, CutoffExcludesVerySlowDevices) {
  const auto cost = measureUserFunction(kHeavyFunc);
  auto lab = sim::SystemConfig::heterogeneousLab();
  lab.devices[0].cores = 1;
  lab.devices[0].ipc = 0.001;  // a hopeless device
  const auto weights = staticWeights(lab.devices, cost);
  EXPECT_DOUBLE_EQ(weights[0], 0.0);
  EXPECT_GT(weights[1], 0.0);
}

TEST(Sched, HostFinishesSmallReductions) {
  // Section V: CPUs are faster than GPUs for the final reduction of few
  // elements; the crossover moves with size.
  const auto cost = measureUserFunction("float func(float a, float b) { return a + b; }");
  const auto gpu = sim::SystemConfig::teslaS1070(1).devices[0];
  const double hostRate = 4.0 * 2.26e9 * 0.5;
  EXPECT_TRUE(hostShouldFinishReduce(gpu, 100, cost, hostRate));
  EXPECT_TRUE(hostShouldFinishReduce(gpu, 4000, cost, hostRate));
  EXPECT_FALSE(hostShouldFinishReduce(gpu, 100'000'000, cost, hostRate));
}

TEST(Sched, AutoScheduleBalancesHeterogeneousMap) {
  // On the heterogeneous lab machine, proportional weights must beat the
  // even split: with even block parts the slow CPU device straggles.
  init(sim::SystemConfig::heterogeneousLab());
  Map<float(float)> heavy(kHeavyFunc);
  const std::size_t n = 200000;
  Vector<float> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = static_cast<float>(i % 13);

  // even split
  resetSimClock();
  heavy(input);
  finish();
  const double evenTime = simTimeSeconds();

  // proportional split
  autoSchedule(kHeavyFunc);
  input.dataOnHostModified();  // force redistribution under the new weights
  resetSimClock();
  heavy(input);
  finish();
  const double proportionalTime = simTimeSeconds();

  EXPECT_LT(proportionalTime, 0.6 * evenTime);
  setPartitionWeights({});
  terminate();
}

TEST(Sched, ScheduledResultStillCorrect) {
  init(sim::SystemConfig::heterogeneousLab());
  autoSchedule(kLightFunc);
  Map<float(float)> inc(kLightFunc);
  Vector<float> v(999);
  for (std::size_t i = 0; i < 999; ++i) v[i] = static_cast<float>(i);
  Vector<float> out = inc(v);
  for (std::size_t i = 0; i < 999; ++i) {
    ASSERT_FLOAT_EQ(out[i], static_cast<float>(i) + 1.0f);
  }
  setPartitionWeights({});
  terminate();
}

}  // namespace
