// Semantic analysis tests: type errors and diagnostics.
#include <gtest/gtest.h>

#include "kernelc/diagnostics.hpp"
#include "kernelc/program.hpp"

using namespace skelcl::kc;

namespace {

void expectOk(const std::string& src) { EXPECT_NO_THROW(compileProgram(src)) << src; }

void expectError(const std::string& src, const std::string& needle) {
  try {
    compileProgram(src);
    FAIL() << "expected CompileError for:\n" << src;
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(KernelcSema, UndeclaredIdentifier) {
  expectError("int f() { return x; }", "undeclared identifier 'x'");
}

TEST(KernelcSema, RedeclarationInSameScope) {
  expectError("void f() { int a; float a; }", "redeclaration of 'a'");
}

TEST(KernelcSema, ShadowingInInnerScopeIsAllowed) {
  expectOk("int f() { int a = 1; { int a = 2; } return a; }");
}

TEST(KernelcSema, UnknownFunction) {
  expectError("void f() { frobnicate(1); }", "unknown function 'frobnicate'");
}

TEST(KernelcSema, WrongArgumentCount) {
  expectError("int g(int a) { return a; } void f() { g(1, 2); }", "expects 1 arguments");
}

TEST(KernelcSema, RedefinedFunction) {
  expectError("void f() {} void f() {}", "redefinition of function 'f'");
}

TEST(KernelcSema, BuiltinShadowingRejected) {
  expectError("float sqrt(float x) { return x; }", "shadows a builtin");
}

TEST(KernelcSema, KernelMustReturnVoid) {
  expectError("__kernel int k() { return 1; }", "kernel functions must return void");
}

TEST(KernelcSema, KernelCannotBeCalledFromDevice) {
  expectError("__kernel void k() {} void f() { k(); }", "kernels cannot be called");
}

TEST(KernelcSema, VoidVariableRejected) {
  expectError("void f() { void v; }", "void");
}

TEST(KernelcSema, AssignToRValueRejected) {
  expectError("void f() { 1 = 2; }", "not an lvalue");
  expectError("void f(int a, int b) { (a + b) = 2; }", "not an lvalue");
}

TEST(KernelcSema, PointerMinusPointerRejected) {
  expectError("int f(int* a, int* b) { return a - b; }", "pointer");
}

TEST(KernelcSema, DerefNonPointerRejected) {
  expectError("int f(int a) { return *a; }", "dereference a non-pointer");
}

TEST(KernelcSema, SubscriptNonPointerRejected) {
  expectError("int f(int a) { return a[0]; }", "not a pointer or array");
}

TEST(KernelcSema, NonIntegerSubscriptRejected) {
  expectError("int f(int* a, float x) { return a[x]; }", "subscript must be an integer");
}

TEST(KernelcSema, BitwiseOnFloatRejected) {
  expectError("float f(float a, float b) { return a & b; }", "integer operator");
}

TEST(KernelcSema, RemainderOnFloatRejected) {
  expectError("float f(float a) { return a % 2.0f; }", "integer operator");
}

TEST(KernelcSema, ConditionMustBeArithmetic) {
  expectError("void f(int* p) { if (p) { } }", "condition must have arithmetic type");
}

TEST(KernelcSema, PointerComparedToNullLiteral) {
  expectOk("int f(int* p) { return p == 0; }");
}

TEST(KernelcSema, IncompatiblePointerComparisonRejected) {
  expectError("int f(int* a, float* b) { return a == b; }", "incompatible pointer types");
}

TEST(KernelcSema, BreakOutsideLoop) {
  expectError("void f() { break; }", "'break' outside of a loop");
}

TEST(KernelcSema, ContinueOutsideLoop) {
  expectError("void f() { continue; }", "'continue' outside of a loop");
}

TEST(KernelcSema, ReturnValueFromVoid) {
  expectError("void f() { return 1; }", "void function must not return a value");
}

TEST(KernelcSema, MissingReturnValue) {
  expectError("int f() { return; }", "must return a value");
}

TEST(KernelcSema, UnknownStruct) {
  expectError("void f(struct Nope* p) { }", "unknown struct 'Nope'");
}

TEST(KernelcSema, UnknownMember) {
  expectError("typedef struct { float x; } P; float f(P* p) { return p->y; }",
              "no member 'y'");
}

TEST(KernelcSema, DotOnPointerRejected) {
  expectError("typedef struct { float x; } P; float f(P* p) { return p.x; }",
              "'.' requires a struct value");
}

TEST(KernelcSema, ArrowOnValueRejected) {
  expectError("typedef struct { float x; } P; float f(P* p) { P v = *p; return v->x; }",
              "'->' requires a pointer");
}

TEST(KernelcSema, DuplicateStructRejected) {
  expectError("typedef struct { int a; } S; typedef struct { int b; } S;", "duplicate struct");
}

TEST(KernelcSema, PointerMemberInStructRejected) {
  expectError("typedef struct { int* p; } S;", "pointer members");
}

TEST(KernelcSema, StructParamByValueRejected) {
  expectError("typedef struct { int a; } S; void f(S s) { }",
              "struct parameters must be passed by pointer");
}

TEST(KernelcSema, StructReturnByValueRejected) {
  expectError("typedef struct { int a; } S; S f(S* s) { return *s; }",
              "returning structs by value");
}

TEST(KernelcSema, AddressOfParameterRejected) {
  expectError("void f(int a) { int* p = &a; }", "address of parameter");
}

TEST(KernelcSema, AddressOfLocalAllowed) {
  expectOk("int f() { int a = 3; int* p = &a; return *p; }");
}

TEST(KernelcSema, AddressOfTemporaryRejected) {
  expectError("void f(int a) { int* p = &(a + 1); }", "cannot take the address");
}

TEST(KernelcSema, ArrayInitializerRejected) {
  expectError("void f() { float a[2] = 0; }", "array initializers");
}

TEST(KernelcSema, ZeroSizedArrayRejected) {
  expectError("void f() { float a[0]; }", "array size must be positive");
}

TEST(KernelcSema, ImplicitIntToFloatOk) {
  expectOk("float f(int a) { float x = a; return x + 1; }");
}

TEST(KernelcSema, ImplicitPointerToFloatRejected) {
  expectError("float f(int* p) { float x = p; return x; }", "cannot convert");
}

TEST(KernelcSema, CastPointerToIntRejected) {
  expectError("int f(int* p) { return (int)p; }", "invalid cast");
}

TEST(KernelcSema, PointerReinterpretCastAllowed) {
  expectOk("float f(int* p) { float* q = (float*)p; return q[0] + 0.0f * (float)sizeof(float); }");
}

TEST(KernelcSema, MultipleDiagnosticsCollected) {
  try {
    compileProgram("void f() { return x; } void g() { return y; }");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_GE(e.diagnostics().size(), 2u);  // one error in each function
  }
}

TEST(KernelcSema, CompoundAssignOnStructRejected) {
  expectError("typedef struct { int a; } S; void f(S* p, S* q) { *p += *q; }",
              "compound assignment");
}

TEST(KernelcSema, ShiftResultTypeFollowsLhs) {
  expectOk("uint f(uint a, int s) { return a >> s; }");
}

}  // namespace
