// Constant-folding tests: folded programs are semantically identical but
// execute fewer instructions (visible through the simulated-time model).
#include <gtest/gtest.h>

#include <string>

#include "kernelc/diagnostics.hpp"
#include "kernelc/program.hpp"
#include "kernelc_test_util.hpp"

using namespace kctest;
using skelcl::kc::FunctionCode;
using skelcl::kc::Op;

namespace {

const FunctionCode& fnOf(const Harness& h, const std::string& name) {
  const int idx = h.program().findFunction(name);
  EXPECT_GE(idx, 0);
  return h.program().functions[static_cast<std::size_t>(idx)];
}

TEST(KernelcFolding, IntExpressionCollapsesToOnePush) {
  Harness h("int f() { return 2 + 3 * 4 - 1; }");
  const FunctionCode& fn = fnOf(h, "f");
  // push, ret, trailing trap
  ASSERT_EQ(fn.code.size(), 3u);
  EXPECT_EQ(fn.code[0].op, Op::PushI);
  EXPECT_EQ(fn.code[0].imm, 13);
  EXPECT_EQ(fn.code[1].op, Op::Ret);
  EXPECT_EQ(h.call("f", {}).i, 13);
}

TEST(KernelcFolding, FloatExpressionFoldsWithFloatRounding) {
  Harness h("float f() { return 0.1f + 0.2f; }");
  const FunctionCode& fn = fnOf(h, "f");
  ASSERT_EQ(fn.code.size(), 3u);
  EXPECT_EQ(fn.code[0].op, Op::PushF);
  EXPECT_EQ(static_cast<float>(h.call("f", {}).f), 0.1f + 0.2f);
}

TEST(KernelcFolding, CastOfLiteralFolds) {
  Harness h("int f() { return (int)2.75f + (int)sizeof(float); }");
  const FunctionCode& fn = fnOf(h, "f");
  ASSERT_EQ(fn.code.size(), 3u);
  EXPECT_EQ(fn.code[0].imm, 6);
}

TEST(KernelcFolding, UnsignedWrapFoldsLikeRuntime) {
  Harness h("uint f() { return 0xFFFFFFFFu + 2u; }");
  EXPECT_EQ(static_cast<std::uint32_t>(h.call("f", {}).i), 1u);
  EXPECT_EQ(fnOf(h, "f").code[0].op, Op::PushI);
}

TEST(KernelcFolding, SignedOverflowWrapsLikeRuntime) {
  // folded and unfolded paths must agree on wrap-around
  Harness folded("int f() { return 2147483647 + 1; }");
  Harness runtime("int f(int x) { return x + 1; }");
  const Slot args[] = {Slot::fromInt(2147483647)};
  EXPECT_EQ(folded.call("f", {}).i, runtime.call("f", args).i);
}

TEST(KernelcFolding, DivisionByZeroIsNotFolded) {
  // The fault must still happen at run time, not at compile time.
  Harness h("int f() { return 1 / 0; }");
  EXPECT_EQ(fnOf(h, "f").code[0].op, Op::PushI);  // operands pushed individually
  EXPECT_GT(fnOf(h, "f").code.size(), 3u);
  EXPECT_THROW(h.call("f", {}), skelcl::kc::VmError);
}

TEST(KernelcFolding, TernaryWithConstantConditionDropsDeadBranch) {
  Harness h("int f() { return 1 ? 42 : 7; }");
  const FunctionCode& fn = fnOf(h, "f");
  ASSERT_EQ(fn.code.size(), 3u);
  EXPECT_EQ(fn.code[0].imm, 42);
}

TEST(KernelcFolding, TernaryWithSideEffectInTakenBranchNotFolded) {
  Harness h("int f() { int x = 0; return 1 ? (x = 5) : 7; }");
  EXPECT_EQ(h.call("f", {}).i, 5);
}

TEST(KernelcFolding, ComparisonOfLiteralsFolds) {
  Harness h("int f() { return (3 < 4) + (2.0f >= 2.0f) + (1 != 1); }");
  const FunctionCode& fn = fnOf(h, "f");
  ASSERT_EQ(fn.code.size(), 3u);
  EXPECT_EQ(fn.code[0].imm, 2);
}

TEST(KernelcFolding, NonConstantSubexpressionsStillPartiallyFold) {
  // (2 * 3) folds; the variable addition does not.
  Harness h("int f(int x) { return x + 2 * 3; }");
  const FunctionCode& fn = fnOf(h, "f");
  // load x, push 6, add, ret, trap
  ASSERT_EQ(fn.code.size(), 5u);
  EXPECT_EQ(fn.code[1].op, Op::PushI);
  EXPECT_EQ(fn.code[1].imm, 6);
  const Slot args[] = {Slot::fromInt(10)};
  EXPECT_EQ(h.call("f", args).i, 16);
}

TEST(KernelcFolding, FoldingReducesInstructionCount) {
  // The same semantics, written with and without foldable constants: the
  // folded version must execute strictly fewer instructions, which is what
  // makes the optimizer visible in simulated kernel time.
  Harness folded("float f(float x) { return x * (2.0f * 3.14159f * 0.5f); }");
  Harness manual("float f(float x, float a, float b, float c) { return x * (a * b * c); }");
  const Slot fArgs[] = {Slot::fromFloat(2.0)};
  const Slot mArgs[] = {Slot::fromFloat(2.0), Slot::fromFloat(2.0),
                        Slot::fromFloat(3.14159), Slot::fromFloat(0.5)};
  const double r1 = folded.call("f", fArgs).f;
  const double r2 = manual.call("f", mArgs).f;
  EXPECT_FLOAT_EQ(static_cast<float>(r1), static_cast<float>(r2));
  EXPECT_LT(folded.instructions(), manual.instructions());
}

TEST(KernelcFolding, LogicalOperatorsAreNotFolded) {
  // && / || lower to jumps (short-circuit); they still evaluate correctly.
  Harness h("int f() { return 1 && 0; }");
  EXPECT_EQ(h.call("f", {}).i, 0);
}

TEST(KernelcFolding, NegativeLiteralFolds) {
  Harness h("int f() { return -(-5); }");
  const FunctionCode& fn = fnOf(h, "f");
  ASSERT_EQ(fn.code.size(), 3u);
  EXPECT_EQ(fn.code[0].imm, 5);
}

}  // namespace
