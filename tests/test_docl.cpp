// dOpenCL simulation (paper Section V): remote devices appear local, SkelCL
// runs unchanged, and the network cost is visible in the simulated time.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>

#include "core/detail/runtime.hpp"
#include "core/distribution.hpp"
#include "core/skelcl.hpp"
#include "docl/docl.hpp"

using namespace skelcl;
using namespace skelcl::docl;

namespace {

TEST(Docl, LaboratorySetupExposesEightGpusAndNoLocalDevices) {
  const auto flat = flatten(laboratorySetup());
  EXPECT_EQ(flat.devices.size(), 8u);  // 4 + 2 + 2 GPUs
  EXPECT_EQ(flat.devices[0].name.substr(0, 6), "node0/");
  EXPECT_EQ(flat.devices[4].name.substr(0, 6), "node1/");
  EXPECT_EQ(flat.devices[6].name.substr(0, 6), "node2/");
}

TEST(Docl, LinkIndicesRemappedWithoutCollision) {
  const auto flat = flatten(laboratorySetup());
  // S1070 contributes links 0-1, each dual-GPU server two more
  EXPECT_EQ(flat.links.size(), 6u);
  for (const auto& dev : flat.devices) {
    ASSERT_GE(dev.pcie_link, 0);
    ASSERT_LT(dev.pcie_link, static_cast<int>(flat.links.size()));
  }
  // devices of different nodes never share a link
  EXPECT_NE(flat.devices[3].pcie_link, flat.devices[4].pcie_link);
}

TEST(Docl, EmptyServerListRejected) {
  EXPECT_THROW(flatten(DistributedConfig{}), UsageError);
}

TEST(Docl, SkelClRunsUnchangedOnDistributedDevices) {
  // The drop-in-replacement claim: ordinary SkelCL code over 8 remote GPUs.
  initSkelCL(laboratorySetup());
  EXPECT_EQ(deviceCount(), 8);
  Zip<float> saxpy("float func(float x, float y, float a) { return a * x + y; }");
  const std::size_t n = 4096;
  Vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i);
    y[i] = 1.0f;
  }
  Vector<float> out = saxpy(x, y, 3.0f);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out[i], 3.0f * static_cast<float>(i) + 1.0f);
  }
  terminate();
}

TEST(Docl, NetworkHopMakesRemoteExecutionSlower) {
  auto runMap = [](bool distributed) {
    if (distributed) {
      DistributedConfig cfg;
      cfg.servers.push_back(sim::SystemConfig::teslaS1070(4));
      initSkelCL(cfg);
    } else {
      init(sim::SystemConfig::teslaS1070(4));
    }
    double t = 0.0;
    {
      Map<float(float)> inc("float func(float x) { return x + 1.0f; }");
      Vector<float> v(1 << 16);
      inc(v);  // warm-up compiles the program (excluded, as in the paper)
      finish();
      v.dataOnHostModified();  // force a fresh upload in the timed run
      resetSimClock();
      inc(v);
      finish();
      t = simTimeSeconds();
    }
    terminate();
    return t;
  };
  const double local = runMap(false);
  const double remote = runMap(true);
  EXPECT_GT(remote, 2.0 * local);  // GbE bandwidth + latency dominate
}

TEST(Docl, BandwidthBoundTransfersAtNetworkRate) {
  DistributedConfig cfg;
  cfg.servers.push_back(sim::SystemConfig::teslaS1070(1));
  init(flatten(cfg));  // flatten embeds the NIC topology; no applyNetworkModel
  auto& system = detail::Runtime::instance().system();
  const auto span = system.reserveTransfer(0, 117'000'000, 0.0);  // 117 MB
  // ~1 s through the GbE NIC, plus the server-local PCIe leg (~23 ms).
  EXPECT_NEAR(span.duration(), 1.0, 0.05);
  EXPECT_GT(span.duration(), 1.0);
  terminate();
}

TEST(Docl, LegacyNetworkModelStillChargesNonTopologySystems) {
  // applyNetworkModel remains available for hand-built (non-flattened)
  // systems that carry no NIC topology of their own.
  DistributedConfig cfg;
  cfg.servers.push_back(sim::SystemConfig::teslaS1070(1));
  init(sim::SystemConfig::teslaS1070(1));  // plain local system, no NICs
  applyNetworkModel(detail::Runtime::instance().system(), cfg);
  auto& system = detail::Runtime::instance().system();
  const auto span = system.reserveTransfer(0, 117'000'000, 0.0);  // 117 MB
  EXPECT_NEAR(span.duration(), 1.0, 0.05);  // ~1 s at GbE rate
  terminate();
}

TEST(Docl, NodeAwareBlockPartitionApportionsAcrossNodesFirst) {
  const Distribution block = Distribution::block();
  // Two 2-GPU nodes, 10 elements: the node level splits 5/5 exactly, THEN
  // each node rounds internally — so the node boundary lands at 5.  The flat
  // partition rounds across all four devices and puts it at 6.
  const auto tree = block.partition(10, {0, 1, 2, 3}, {0, 0, 1, 1});
  ASSERT_EQ(tree.size(), 4u);
  EXPECT_EQ(tree[0].size + tree[1].size, 5u);  // node0 share
  EXPECT_EQ(tree[2].offset, 5u);               // node boundary
  const auto flat = block.partition(10, {0, 1, 2, 3});
  EXPECT_EQ(flat[2].offset, 6u);

  // One device per node degenerates to the flat partition.
  const auto perNode = block.partition(10, {0, 1, 2, 3}, {0, 1, 2, 3});
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(perNode[i].offset, flat[i].offset);
    EXPECT_EQ(perNode[i].size, flat[i].size);
  }

  // Weighted: node shares follow the summed member weights ({3,1} vs {1,1}
  // -> 5/3 of 8), and the weights then skew the split inside each node.
  const auto weighted =
      Distribution::block({3, 1, 1, 1}).partition(8, {0, 1, 2, 3}, {0, 0, 1, 1});
  EXPECT_EQ(weighted[0].size + weighted[1].size, 5u);
  EXPECT_EQ(weighted[0].size, 4u);  // weight 3 of the node's 4
  EXPECT_EQ(weighted[2].offset, 5u);
}

TEST(Docl, NodeAwareCopyPartitionBroadcastsFullRange) {
  // Copy is a broadcast: node topology changes how the data travels (the
  // tree in materializeParts), never what each device holds.
  const auto parts = Distribution::copy().partition(10, {0, 1, 2, 3}, {0, 0, 1, 1});
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& p : parts) {
    EXPECT_EQ(p.offset, 0u);
    EXPECT_EQ(p.size, 10u);
  }
}

TEST(Docl, NodeAwareBlockPartitionSpansSurvivingDevicesOfDeadNode) {
  // Devices 2 and 3 (tail of node0) are gone: the surviving alive-ordered
  // subset still groups into per-node runs and the split stays balanced.
  const auto parts =
      Distribution::block().partition(12, {0, 1, 4, 5}, {0, 0, 0, 1, 1, 1});
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& p : parts) EXPECT_EQ(p.size, 3u);
  EXPECT_EQ(parts[2].device, 4);
  EXPECT_EQ(parts[2].offset, 6u);  // node boundary at the halfway point
}

TEST(Docl, TreeReduceBitIdenticalToFlatGather) {
  // The two-level tree regroups the fold (chunked device folds, node-local
  // combine, host fold of node values); on exactly-representable values the
  // result must match the flat gather bit for bit.
  auto run = [](bool tree) {
    ::setenv("SKELCL_TREE_COLLECTIVES", tree ? "1" : "0", 1);
    DistributedConfig cfg;
    for (int s = 0; s < 4; ++s) cfg.servers.push_back(sim::SystemConfig::teslaS1070(2));
    initSkelCL(cfg);
    float result = 0.0f;
    {
      Reduce<float> sum("float func(float a, float b) { return a + b; }");
      Vector<float> v(8192);
      // Multiples of 0.25 summing far below 2^24: float addition is exact.
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = 0.25f * static_cast<float>(i % 7);
      }
      result = sum(v);
    }
    terminate();
    ::unsetenv("SKELCL_TREE_COLLECTIVES");
    return result;
  };
  const float flat = run(false);
  const float tree = run(true);
  EXPECT_EQ(std::memcmp(&flat, &tree, sizeof(float)), 0)
      << "flat " << flat << " vs tree " << tree;
  // 1170 full 0..6 cycles (sum 5.25 each) plus the leftover {0, 1} pair.
  EXPECT_FLOAT_EQ(flat, 1170.0f * 5.25f + 0.25f);
}

TEST(Docl, EmptyVectorRunsThroughClusterSkeleton) {
  // A size-0 vector must survive the whole node-aware path: empty parts on
  // every device, zero-byte transfers charging latency only, empty result.
  DistributedConfig cfg;
  cfg.servers.push_back(sim::SystemConfig::teslaS1070(2));
  cfg.servers.push_back(sim::SystemConfig::teslaS1070(2));
  initSkelCL(cfg);
  {
    Map<int> twice("int func(int x) { return 2 * x; }");
    Vector<int> v(0);
    Vector<int> out = twice(v);
    EXPECT_EQ(out.size(), 0u);
    finish();
    EXPECT_LT(simTimeSeconds(), 0.01);  // no bulk transfer was charged
  }
  terminate();
}

TEST(Docl, ZeroByteTransferChargesLatencyOnly) {
  DistributedConfig cfg;
  cfg.servers.push_back(sim::SystemConfig::teslaS1070(2));
  init(flatten(cfg));
  auto& system = detail::Runtime::instance().system();
  // A bulk transfer occupies the NIC for ~1 s...
  const auto bulk = system.reserveTransfer(0, 117'000'000, 0.0);
  EXPECT_GT(bulk.duration(), 0.9);
  // ...but a zero-byte transfer pays latency only and does NOT queue
  // behind it on any timeline.
  const auto empty = system.reserveTransfer(1, 0, 0.0);
  EXPECT_DOUBLE_EQ(empty.start, 0.0);
  EXPECT_LT(empty.duration(), 1e-3);
  EXPECT_GT(empty.duration(), 0.0);  // NIC + PCIe latency still charged
  terminate();
}

}  // namespace
