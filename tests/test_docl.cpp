// dOpenCL simulation (paper Section V): remote devices appear local, SkelCL
// runs unchanged, and the network cost is visible in the simulated time.
#include <gtest/gtest.h>

#include <numeric>

#include "core/detail/runtime.hpp"
#include "core/skelcl.hpp"
#include "docl/docl.hpp"

using namespace skelcl;
using namespace skelcl::docl;

namespace {

TEST(Docl, LaboratorySetupExposesEightGpusAndNoLocalDevices) {
  const auto flat = flatten(laboratorySetup());
  EXPECT_EQ(flat.devices.size(), 8u);  // 4 + 2 + 2 GPUs
  EXPECT_EQ(flat.devices[0].name.substr(0, 6), "node0/");
  EXPECT_EQ(flat.devices[4].name.substr(0, 6), "node1/");
  EXPECT_EQ(flat.devices[6].name.substr(0, 6), "node2/");
}

TEST(Docl, LinkIndicesRemappedWithoutCollision) {
  const auto flat = flatten(laboratorySetup());
  // S1070 contributes links 0-1, each dual-GPU server two more
  EXPECT_EQ(flat.links.size(), 6u);
  for (const auto& dev : flat.devices) {
    ASSERT_GE(dev.pcie_link, 0);
    ASSERT_LT(dev.pcie_link, static_cast<int>(flat.links.size()));
  }
  // devices of different nodes never share a link
  EXPECT_NE(flat.devices[3].pcie_link, flat.devices[4].pcie_link);
}

TEST(Docl, EmptyServerListRejected) {
  EXPECT_THROW(flatten(DistributedConfig{}), UsageError);
}

TEST(Docl, SkelClRunsUnchangedOnDistributedDevices) {
  // The drop-in-replacement claim: ordinary SkelCL code over 8 remote GPUs.
  initSkelCL(laboratorySetup());
  EXPECT_EQ(deviceCount(), 8);
  Zip<float> saxpy("float func(float x, float y, float a) { return a * x + y; }");
  const std::size_t n = 4096;
  Vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i);
    y[i] = 1.0f;
  }
  Vector<float> out = saxpy(x, y, 3.0f);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out[i], 3.0f * static_cast<float>(i) + 1.0f);
  }
  terminate();
}

TEST(Docl, NetworkHopMakesRemoteExecutionSlower) {
  auto runMap = [](bool distributed) {
    if (distributed) {
      DistributedConfig cfg;
      cfg.servers.push_back(sim::SystemConfig::teslaS1070(4));
      initSkelCL(cfg);
    } else {
      init(sim::SystemConfig::teslaS1070(4));
    }
    double t = 0.0;
    {
      Map<float(float)> inc("float func(float x) { return x + 1.0f; }");
      Vector<float> v(1 << 16);
      inc(v);  // warm-up compiles the program (excluded, as in the paper)
      finish();
      v.dataOnHostModified();  // force a fresh upload in the timed run
      resetSimClock();
      inc(v);
      finish();
      t = simTimeSeconds();
    }
    terminate();
    return t;
  };
  const double local = runMap(false);
  const double remote = runMap(true);
  EXPECT_GT(remote, 2.0 * local);  // GbE bandwidth + latency dominate
}

TEST(Docl, BandwidthBoundTransfersAtNetworkRate) {
  DistributedConfig cfg;
  cfg.servers.push_back(sim::SystemConfig::teslaS1070(1));
  init(flatten(cfg));
  applyNetworkModel(detail::Runtime::instance().system(), cfg);
  auto& system = detail::Runtime::instance().system();
  const auto span = system.reserveTransfer(0, 117'000'000, 0.0);  // 117 MB
  EXPECT_NEAR(span.duration(), 1.0, 0.01);  // ~1 s at GbE rate
  terminate();
}

}  // namespace
