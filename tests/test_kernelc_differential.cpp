// Differential tests across the interpreter tier ladder (docs/VM.md): the
// same source compiled at tier 0 (reference), tier 1 (peephole + packed +
// fast interpreter) and tier 2 (rewrite pass), plus tier 2 run on the
// work-group-batched interpreter, must produce bit-identical buffer
// contents, identical scalar results, and — because superinstructions and
// rewrite replacements carry the weight of the naive windows they replace —
// identical retired-instruction counts (which drive simulated kernel time).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "kernelc/diagnostics.hpp"
#include "kernelc/program.hpp"
#include "kernelc/vm.hpp"

using namespace skelcl::kc;

namespace {

/// Run `kernel` from `source` over `n` work-items under every tier (plus the
/// batched interpreter at tier 2), each on its own copy of `data`, and
/// require bitwise-equal buffers and equal instruction counts throughout.
void expectIdentical(const std::string& source, const std::string& kernel,
                     std::vector<float> data, std::int64_t n,
                     std::vector<Slot> extraArgs = {}) {
  const auto ref = compileProgram(source, CompileOptions{0});
  const auto fast = compileProgram(source, CompileOptions{1});
  const auto tier2 = compileProgram(source, CompileOptions{2});
  ASSERT_FALSE(ref->optimized);
  ASSERT_TRUE(fast->optimized);
  ASSERT_TRUE(tier2->optimized);

  const auto run = [&](const CompiledProgram& program, std::vector<float>& buf,
                       std::uint64_t& count, bool batch) {
    std::vector<MemRegion> regions{
        MemRegion{reinterpret_cast<std::byte*>(buf.data()), buf.size() * sizeof(float)}};
    Ptr p;
    p.region = 1;
    p.offset = 0;
    std::vector<Slot> args{Slot::fromPtr(p)};
    args.insert(args.end(), extraArgs.begin(), extraArgs.end());
    Vm vm(program, regions);
    const int k = program.findKernel(kernel);
    ASSERT_GE(k, 0);
    if (batch) {
      for (std::int64_t gid = 0; gid < n;) {
        const std::int64_t lanes = std::min<std::int64_t>(n - gid, Vm::kBatchLanes);
        vm.runKernelBatch(k, args, gid, lanes, n);
        gid += lanes;
      }
    } else {
      for (std::int64_t gid = 0; gid < n; ++gid) vm.runKernel(k, args, gid, n);
    }
    count = vm.instructionsExecuted();
  };

  struct Leg {
    const char* name;
    const CompiledProgram* program;
    bool batch;
  };
  const Leg legs[] = {
      {"ref", ref.get(), false},
      {"fast", fast.get(), false},
      {"tier2", tier2.get(), false},
      {"batch", tier2.get(), true},
  };
  std::vector<float> bufs[4];
  std::uint64_t counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    bufs[i] = data;
    run(*legs[i].program, bufs[i], counts[i], legs[i].batch);
  }
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(counts[i], counts[0])
        << legs[i].name << ": retired-instruction counts diverged — "
                           "simulated kernel time would change";
    ASSERT_EQ(bufs[i].size(), bufs[0].size());
    EXPECT_EQ(0, std::memcmp(bufs[i].data(), bufs[0].data(),
                             bufs[0].size() * sizeof(float)))
        << legs[i].name << ": buffer contents diverged between pipelines";
  }
}

std::int64_t callBoth(const std::string& source, const std::string& fn,
                      std::vector<Slot> args, std::uint64_t* counts) {
  const auto fast = compileProgram(source, CompileOptions{1});
  const auto ref = compileProgram(source, CompileOptions{0});
  const auto tier2 = compileProgram(source, CompileOptions{2});
  Vm vmFast(*fast, {});
  Vm vmRef(*ref, {});
  Vm vmT2(*tier2, {});
  const Slot a = vmFast.callFunction(fast->findFunction(fn), args);
  const Slot b = vmRef.callFunction(ref->findFunction(fn), args);
  const Slot c = vmT2.callFunction(tier2->findFunction(fn), args);
  counts[0] = vmFast.instructionsExecuted();
  counts[1] = vmRef.instructionsExecuted();
  EXPECT_EQ(a.i, b.i);  // full 64-bit slot compare covers int and float bits
  EXPECT_EQ(c.i, b.i);
  EXPECT_EQ(vmT2.instructionsExecuted(), counts[1]);
  return a.i;
}

TEST(KernelcDifferential, MandelbrotShapedKernel) {
  // The mandel workload shape: per-item escape-time loop with f32 arithmetic,
  // fused compare-and-branch back-edges, and a final store.
  const std::string src = R"(
    __kernel void mandel(__global float* out, int width, int maxIter) {
      int gid = get_global_id(0);
      int px = gid % width;
      int py = gid / width;
      float cr = -2.0f + 3.0f * (float)px / (float)width;
      float ci = -1.5f + 3.0f * (float)py / (float)width;
      float zr = 0.0f; float zi = 0.0f;
      int it = 0;
      while (it < maxIter) {
        float zr2 = zr * zr; float zi2 = zi * zi;
        if (zr2 + zi2 > 4.0f) break;
        zi = 2.0f * zr * zi + ci;
        zr = zr2 - zi2 + cr;
        ++it;
      }
      out[gid] = (float)it;
    }
  )";
  expectIdentical(src, "mandel", std::vector<float>(64, 0.0f), 64,
                  {Slot::fromInt(std::int64_t{8}), Slot::fromInt(std::int64_t{64})});
}

TEST(KernelcDifferential, OsemShapedKernel) {
  // The OSEM workload shape: indexed gather over a buffer with an inner
  // accumulation loop and a guarded division.  Reads come from the upper
  // half of the buffer and writes go to the lower half — work-items must not
  // race on shared data, or execution order (sequential vs batched) would
  // legitimately change the result.
  const std::string src = R"(
    __kernel void project(__global float* data, int n) {
      int gid = get_global_id(0);
      float acc = 0.0f;
      for (int i = 0; i < n; ++i) {
        acc = acc + data[n + (gid + i) % n] * 0.5f;
      }
      if (acc != 0.0f) acc = 1.0f / acc;
      data[gid] = acc;
    }
  )";
  std::vector<float> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 0.25f * static_cast<float>(i + 1);
  expectIdentical(src, "project", data, 32, {Slot::fromInt(std::int64_t{32})});
}

TEST(KernelcDifferential, FrameArraysAndStructs) {
  const std::string src = R"(
    struct Acc { float lo; float hi; };
    __kernel void histo(__global float* out, int n) {
      int gid = get_global_id(0);
      float bins[4];
      for (int b = 0; b < 4; ++b) bins[b] = 0.0f;
      struct Acc acc;
      acc.lo = 0.0f; acc.hi = 0.0f;
      for (int i = 0; i < n; ++i) {
        int b = (gid + i) % 4;
        bins[b] = bins[b] + (float)i;
        if (b < 2) acc.lo = acc.lo + 1.0f; else acc.hi = acc.hi + 1.0f;
      }
      out[gid] = bins[0] + bins[1] * 2.0f + bins[2] * 3.0f + bins[3] * 4.0f
               + acc.lo * 10.0f + acc.hi * 20.0f;
    }
  )";
  expectIdentical(src, "histo", std::vector<float>(16, 0.0f), 16,
                  {Slot::fromInt(std::int64_t{13})});
}

TEST(KernelcDifferential, NestedCallsAndBuiltins) {
  const std::string src = R"(
    float sq(float x) { return x * x; }
    float norm(float a, float b) { return sqrt(sq(a) + sq(b)); }
    __kernel void k(__global float* out) {
      int gid = get_global_id(0);
      out[gid] = norm(out[gid], (float)gid);
    }
  )";
  std::vector<float> data(24);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = 1.5f * static_cast<float>(i) - 7.0f;
  expectIdentical(src, "k", data, 24);
}

TEST(KernelcDifferential, IntegerEdgeCases) {
  // 32-bit wrap-around, shifts, signed/unsigned division, post-increments.
  const std::string src = R"(
    int f(int n) {
      int acc = 0;
      uint u = 0xC0000000;
      for (int i = 1; i <= n; i++) {
        acc = acc + 0x7FFFFFFF / i;
        acc = acc ^ (acc << 3);
        acc = acc + (int)(u >> (i % 31));
        acc = acc - acc % (i + 1);
      }
      return acc;
    }
  )";
  std::uint64_t counts[2];
  callBoth(src, "f", {Slot::fromInt(std::int64_t{17})}, counts);
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(KernelcDifferential, LongArithmetic) {
  const std::string src = R"(
    long f(long n) {
      long acc = 1;
      for (long i = 1; i < n; i = i + 1) {
        acc = acc * 1103515245 + 12345;
        acc = acc ^ (acc >> 17);
      }
      return acc;
    }
  )";
  std::uint64_t counts[2];
  callBoth(src, "f", {Slot::fromInt(std::int64_t{100})}, counts);
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(KernelcDifferential, InstructionCountsMatchExactly) {
  // A branch-heavy function: every fused compare-and-branch, slot increment,
  // and fused load must retire exactly as many instructions as its window.
  const std::string src = R"(
    int collatz(int n) {
      int steps = 0;
      while (n != 1) {
        if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
        steps++;
      }
      return steps;
    }
  )";
  std::uint64_t counts[2];
  const std::int64_t steps = callBoth(src, "collatz", {Slot::fromInt(std::int64_t{27})}, counts);
  EXPECT_EQ(steps, 111);
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_GT(counts[0], 0u);
}

TEST(KernelcDifferential, FunctionIndexLookup) {
  // compileProgram builds a name -> index map; lookups must agree with the
  // declaration order and respect the kernel / function distinction.
  const auto program = compileProgram(R"(
    float helper(float x) { return x + 1.0f; }
    __kernel void first(__global float* p) { p[0] = helper(p[0]); }
    __kernel void second(__global float* p) { p[1] = helper(p[1]); }
  )");
  EXPECT_EQ(program->functionIndex.size(), 3u);
  EXPECT_EQ(program->findFunction("helper"), 0);
  EXPECT_EQ(program->findKernel("first"), 1);
  EXPECT_EQ(program->findKernel("second"), 2);
  EXPECT_EQ(program->findKernel("helper"), -1);  // not a kernel
  EXPECT_EQ(program->findFunction("absent"), -1);
  EXPECT_EQ(program->findKernel("absent"), -1);
}

TEST(KernelcDifferential, DuplicateFunctionNamesRejected) {
  // The map assumes unique names; sema must keep rejecting redefinitions for
  // kernels and plain functions alike.
  EXPECT_THROW(compileProgram("int f() { return 1; } int f() { return 2; }"),
               CompileError);
  EXPECT_THROW(compileProgram("__kernel void k(__global float* p) {}\n"
                              "__kernel void k(__global int* q) {}"),
               CompileError);
}

}  // namespace
