// Tests for the Session/SharedDeviceState split and the multi-tenant
// service (docs/SERVICE.md): concurrent sessions must be bit-identical to
// serial execution, per-session scheduler state must not leak between
// tenants, device death must blacklist for *all* sessions, VRAM quotas must
// hit only the offending session, and the trace collector must reset between
// init/terminate cycles.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "core/detail/session.hpp"
#include "core/detail/trace.hpp"
#include "core/service.hpp"
#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

/// init/terminate guard so a failing assertion cannot leak a runtime into
/// the next test.
struct RuntimeGuard {
  explicit RuntimeGuard(sim::SystemConfig config) { init(std::move(config)); }
  ~RuntimeGuard() { terminate(); }
};

constexpr const char* kMapSrc = "float func(float x) { return x * 1.5f + 0.25f; }";
constexpr const char* kAddSrc = "int func(int a, int b) { return a + b; }";

std::vector<float> mapInput(std::size_t n, int salt) {
  std::vector<float> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<float>((i * 13 + static_cast<std::size_t>(salt)) % 101) * 0.5f;
  }
  return in;
}

std::vector<int> scanInput(std::size_t n, int salt) {
  std::vector<int> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<int>((i + static_cast<std::size_t>(salt)) % 17) - 8;
  }
  return in;
}

}  // namespace

// --- concurrent sessions are bit-identical to serial runs -------------------

TEST(SessionConcurrency, MapReduceScanMatchSerialBitIdentically) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  const std::size_t n = 4096;
  const int rounds = 8;

  // Serial reference, on the default session.
  std::vector<std::vector<float>> mapRef;
  std::vector<int> reduceRef;
  std::vector<std::vector<int>> scanRef;
  {
    Map<float(float)> map(kMapSrc);
    Reduce<int(int)> reduce(kAddSrc);
    Scan<int> scan(kAddSrc);
    for (int r = 0; r < rounds; ++r) {
      Vector<float> mv(mapInput(n, r));
      mapRef.push_back(map(mv).toStdVector());
      Vector<int> rv(scanInput(n, r));
      reduceRef.push_back(reduce(rv));
      Vector<int> sv(scanInput(n, r));
      scanRef.push_back(scan(sv).toStdVector());
    }
  }

  // Three tenant threads run the same workloads concurrently.
  std::vector<std::vector<float>> mapGot(static_cast<std::size_t>(rounds));
  std::vector<int> reduceGot(static_cast<std::size_t>(rounds));
  std::vector<std::vector<int>> scanGot(static_cast<std::size_t>(rounds));
  auto mapClient = std::thread([&] {
    SessionScope scope(createSession({"map-tenant", 1.0, 0}));
    Map<float(float)> map(kMapSrc);
    for (int r = 0; r < rounds; ++r) {
      Vector<float> v(mapInput(n, r));
      mapGot[static_cast<std::size_t>(r)] = map(v).toStdVector();
    }
  });
  auto reduceClient = std::thread([&] {
    SessionScope scope(createSession({"reduce-tenant", 1.0, 0}));
    Reduce<int(int)> reduce(kAddSrc);
    for (int r = 0; r < rounds; ++r) {
      Vector<int> v(scanInput(n, r));
      reduceGot[static_cast<std::size_t>(r)] = reduce(v);
    }
  });
  auto scanClient = std::thread([&] {
    SessionScope scope(createSession({"scan-tenant", 1.0, 0}));
    Scan<int> scan(kAddSrc);
    for (int r = 0; r < rounds; ++r) {
      Vector<int> v(scanInput(n, r));
      scanGot[static_cast<std::size_t>(r)] = scan(v).toStdVector();
    }
  });
  mapClient.join();
  reduceClient.join();
  scanClient.join();

  for (int r = 0; r < rounds; ++r) {
    const auto i = static_cast<std::size_t>(r);
    ASSERT_EQ(mapGot[i].size(), mapRef[i].size());
    EXPECT_EQ(0, std::memcmp(mapGot[i].data(), mapRef[i].data(),
                             mapRef[i].size() * sizeof(float)))
        << "map round " << r << " not bit-identical";
    EXPECT_EQ(reduceGot[i], reduceRef[i]) << "reduce round " << r;
    EXPECT_EQ(scanGot[i], scanRef[i]) << "scan round " << r;
  }
}

TEST(SessionConcurrency, ServiceMapJobsMatchSerialBitIdentically) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  const std::size_t n = 512;
  const int jobs = 24;

  std::vector<std::vector<float>> ref;
  {
    Map<float(float)> map(kMapSrc);
    for (int j = 0; j < jobs; ++j) {
      Vector<float> v(mapInput(n, j));
      ref.push_back(map(v).toStdVector());
    }
  }

  Service service;
  auto a = service.createSession({"a", 1.0, 0});
  auto b = service.createSession({"b", 2.0, 0});
  std::vector<Service::Handle> handles;
  for (int j = 0; j < jobs; ++j) {
    handles.push_back(service.submitMap(j % 2 == 0 ? a : b, kMapSrc, mapInput(n, j)));
  }
  for (int j = 0; j < jobs; ++j) {
    handles[static_cast<std::size_t>(j)].wait();
    const auto& got = handles[static_cast<std::size_t>(j)].output();
    ASSERT_EQ(got.size(), ref[static_cast<std::size_t>(j)].size());
    EXPECT_EQ(0, std::memcmp(got.data(), ref[static_cast<std::size_t>(j)].data(),
                             got.size() * sizeof(float)))
        << "service job " << j << " not bit-identical (batched vs alone)";
  }
  service.drain();  // stats are recorded when a batch retires, after handles fire
  const auto statsA = service.stats(*a);
  const auto statsB = service.stats(*b);
  EXPECT_EQ(statsA.jobsCompleted + statsB.jobsCompleted, static_cast<std::uint64_t>(jobs));
  EXPECT_GT(a->deviceTimeUsed(), 0.0);
  EXPECT_GT(b->deviceTimeUsed(), 0.0);
}

// --- per-session scheduler state does not leak ------------------------------

TEST(SessionIsolation, PartitionWeightsDoNotLeakAcrossSessions) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  auto a = createSession({"a", 1.0, 0});
  auto b = createSession({"b", 1.0, 0});
  a->setPartitionWeights({1.0, 3.0});

  EXPECT_TRUE(b->partitionWeights().empty());
  EXPECT_TRUE(b->applicablePartitionWeights().empty());
  EXPECT_EQ(a->applicablePartitionWeights(), (std::vector<double>{1.0, 3.0}));

  // The same vector plans differently under each session: lopsided under a,
  // even under b — and the plan cache must not serve a's plan to b.
  Vector<float> v(1000);
  v.setDistribution(Distribution::block());
  EXPECT_EQ(v.impl().partSizeOn(*a, 0), 250u);
  EXPECT_EQ(v.impl().partSizeOn(*a, 1), 750u);
  EXPECT_EQ(v.impl().partSizeOn(*b, 0), 500u);
  EXPECT_EQ(v.impl().partSizeOn(*b, 1), 500u);
  EXPECT_EQ(v.impl().partSizeOn(*a, 1), 750u);  // and back

  // The thread-current session routes skelcl::setPartitionWeights.
  {
    SessionScope scope(b);
    setPartitionWeights({1.0, 1.0});
  }
  EXPECT_EQ(b->partitionWeights(), (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(a->partitionWeights(), (std::vector<double>{1.0, 3.0}));
}

// --- device death is shared; every session recovers -------------------------

TEST(SessionFaults, DeviceDeathBlacklistsForAllSessionsAndBothRecover) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan;
  plan.killAfterCommands(1, 6);  // dies mid-run, during one tenant's job
  setFaultPlan(std::move(plan));

  auto a = createSession({"a", 1.0, 0});
  auto b = createSession({"b", 1.0, 0});
  const std::size_t n = 2048;
  const std::vector<int> in = scanInput(n, 3);
  const int expect = std::accumulate(in.begin(), in.end(), 0);

  // Reduce keeps upload, kernel and the partials download inside the
  // recovery-wrapped skeleton entry, so the injected death can land on any
  // command and still be survivable (the inputs' host copies are valid).
  auto runRounds = [&](std::shared_ptr<Session> session, int rounds) {
    SessionScope scope(std::move(session));
    Reduce<int(int)> sum(kAddSrc);
    for (int r = 0; r < rounds; ++r) {
      Vector<int> v(in);
      const int got = sum(v);
      ASSERT_EQ(got, expect) << "round " << r;
    }
  };

  std::thread ta([&] { runRounds(a, 4); });
  std::thread tb([&] { runRounds(b, 4); });
  ta.join();
  tb.join();

  // The blacklist is shared device state: both tenants see one survivor.
  EXPECT_EQ(aliveDeviceCount(), 1);
  EXPECT_EQ(a->aliveDevices(), (std::vector<int>{0}));
  EXPECT_EQ(b->aliveDevices(), (std::vector<int>{0}));

  // And both keep working after the loss.
  runRounds(a, 1);
  runRounds(b, 1);
}

// --- VRAM quotas hit only the offending session -----------------------------

TEST(SessionQuota, BreachRaisesForOffendingSessionOnly) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  auto small = createSession({"small", 1.0, 64 * 1024});
  auto big = createSession({"big", 1.0, 0});

  const std::size_t n = 1 << 16;  // 256 KiB of floats: over small's quota
  {
    SessionScope scope(small);
    Map<float(float)> map(kMapSrc);
    Vector<float> v(mapInput(n, 0));
    EXPECT_THROW(map(v), ResourceError);  // QuotaError is a ResourceError
    EXPECT_THROW(map(v), QuotaError);
  }
  // The failed charge was rolled back and nothing was left half-allocated.
  EXPECT_EQ(small->vramUsed(), 0u);

  {
    // A job within the quota still works for the same session...
    SessionScope scope(small);
    Map<float(float)> map(kMapSrc);
    Vector<float> v(mapInput(128, 1));
    EXPECT_EQ(map(v).toStdVector().size(), 128u);
  }
  {
    // ...and the unlimited session is unaffected by the breach.
    SessionScope scope(big);
    Map<float(float)> map(kMapSrc);
    Vector<float> v(mapInput(n, 2));
    Vector<float> out = map(v);
    EXPECT_EQ(out.toStdVector().size(), n);
    EXPECT_GT(big->vramUsed(), 0u);  // its vectors are resident, charged to it
  }
  EXPECT_EQ(big->vramUsed(), 0u);  // dropping the vectors released the charge
}

TEST(SessionQuota, ServicePropagatesUnserviceableQuotaBreach) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Service service;
  auto small = service.createSession({"small", 1.0, 16 * 1024});
  auto big = service.createSession({"big", 1.0, 0});

  // This job alone can never fit: after queueing it once, the service must
  // fail it with QuotaError — and only it.
  auto doomed = service.submitMap(small, kMapSrc, mapInput(1 << 14, 0));
  auto fine = service.submitMap(big, kMapSrc, mapInput(1 << 14, 1));
  EXPECT_THROW(doomed.wait(), QuotaError);
  EXPECT_NO_THROW(fine.wait());
  EXPECT_EQ(fine.output().size(), std::size_t{1} << 14);
}

// --- lifecycle: shutdown, stopped submits, wait-twice ------------------------

TEST(ServiceLifecycle, SubmitAfterShutdownThrowsServiceStoppedError) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Service service;
  auto s = service.createSession({"tenant", 1.0, 0});

  auto before = service.submitMap(s, kMapSrc, mapInput(256, 0));
  service.shutdown();
  EXPECT_NO_THROW(before.wait()) << "shutdown drains queued jobs first";
  EXPECT_EQ(before.output().size(), 256u);

  EXPECT_THROW(service.submitMap(s, kMapSrc, mapInput(256, 1)), ServiceStoppedError);
  EXPECT_THROW(service.submit(s, [] {}), ServiceStoppedError);
  EXPECT_NO_THROW(service.shutdown()) << "shutdown is idempotent";
}

TEST(ServiceLifecycle, WaitTwiceRethrowsTheSameError) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Service service;
  auto small = service.createSession({"small", 1.0, 16 * 1024});

  // Unserviceable quota breach: the error must come back on *every* wait,
  // not just the first.
  auto doomed = service.submitMap(small, kMapSrc, mapInput(1 << 14, 0));
  EXPECT_THROW(doomed.wait(), QuotaError);
  EXPECT_THROW(doomed.wait(), QuotaError);
  EXPECT_THROW(doomed.output(), QuotaError);
}

// --- cancellation ------------------------------------------------------------

TEST(ServiceCancel, CancelBeforeIssueCompletesWithCancelledError) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Service service;
  auto s = service.createSession({"tenant", 1.0, 0});

  // Paused, the executor cannot pick the job up: cancel must win the race.
  service.pause();
  auto h = service.submitMap(s, kMapSrc, mapInput(512, 0));
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel()) << "second cancel finds the job already done";
  service.resume();
  EXPECT_THROW(h.wait(), CancelledError);
  EXPECT_THROW(h.wait(), CancelledError) << "wait-twice rethrows the cancellation";

  // The session keeps working after a cancellation.
  auto ok = service.submitMap(s, kMapSrc, mapInput(512, 1));
  EXPECT_NO_THROW(ok.wait());
  EXPECT_EQ(ok.output().size(), 512u);
}

TEST(ServiceCancel, CancelAfterCompletionReturnsFalse) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Service service;
  auto s = service.createSession({"tenant", 1.0, 0});
  auto h = service.submitMap(s, kMapSrc, mapInput(256, 0));
  h.wait();
  EXPECT_FALSE(h.cancel());
  EXPECT_EQ(h.output().size(), 256u) << "a late cancel must not clobber the result";
}

TEST(ServiceCancel, WaitForTimesOutWhilePausedThenDelivers) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Service service;
  auto s = service.createSession({"tenant", 1.0, 0});
  service.pause();
  auto h = service.submitMap(s, kMapSrc, mapInput(256, 0));
  EXPECT_FALSE(h.waitFor(0.01)) << "paused service: the job cannot finish";
  service.resume();
  EXPECT_TRUE(h.waitFor(30.0));
  EXPECT_EQ(h.output().size(), 256u);
}

// --- deadlines ---------------------------------------------------------------

TEST(ServiceDeadline, ExpiredDeadlineFailsTheJobBeforeItRuns) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Service service;
  auto s = service.createSession({"tenant", 1.0, 0});

  service.pause();
  // The burner advances the simulated clock; FIFO order guarantees it runs
  // first (a non-map job is never batched with the map job behind it).
  auto burner = service.submit(s, [] {
    Map<float(float)> map(kMapSrc);
    Vector<float> v(mapInput(4096, 7));
    map(v).hostData();
    finish();
  });
  Service::SubmitOptions opts;
  opts.deadlineSeconds = 1e-9;  // expired by the time the burner finishes
  auto late = service.submitMap(s, kMapSrc, mapInput(256, 0), opts);
  service.resume();

  EXPECT_NO_THROW(burner.wait());
  EXPECT_THROW(late.wait(), DeadlineError);

  // A generous deadline passes untouched.
  Service::SubmitOptions roomy;
  roomy.deadlineSeconds = 1e6;
  auto fine = service.submitMap(s, kMapSrc, mapInput(256, 1), roomy);
  EXPECT_NO_THROW(fine.wait());
}

// --- circuit breaker: poison jobs stay isolated ------------------------------

TEST(ServiceBreaker, PoisonJobFailsAloneWhileOtherTenantsComplete) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  constexpr const char* kPoison = "float func(float x) { return undefined_symbol; }";
  Service service;
  auto bad = service.createSession({"bad", 1.0, 0});
  auto good = service.createSession({"good", 1.0, 0});

  auto poison = service.submitMap(bad, kPoison, mapInput(256, 0));
  std::vector<Service::Handle> fine;
  for (int j = 0; j < 6; ++j) {
    fine.push_back(service.submitMap(good, kMapSrc, mapInput(256, j)));
  }

  // The poison job surfaces its *real* error (after the breaker's retry
  // budget), not a breaker artifact.
  try {
    poison.wait();
    FAIL() << "a job with a non-compiling kernel must fail";
  } catch (const CircuitOpenError&) {
    FAIL() << "the first failure must surface the compile error itself";
  } catch (const Error&) {
  }

  // Everyone else is untouched.
  for (auto& h : fine) {
    EXPECT_NO_THROW(h.wait());
    EXPECT_EQ(h.output().size(), 256u);
  }

  // The same source on the same session now fails fast.
  EXPECT_THROW(service.submitMap(bad, kPoison, mapInput(256, 9)).wait(),
               CircuitOpenError);
  // A different source on the same session, and the same source on another
  // session, are separate breaker keys.
  EXPECT_NO_THROW(service.submitMap(bad, kMapSrc, mapInput(256, 10)).wait());
  try {
    service.submitMap(good, kPoison, mapInput(256, 11)).wait();
    FAIL() << "good's first poison attempt should surface the compile error";
  } catch (const CircuitOpenError&) {
    FAIL() << "breaker state must be per (session, source)";
  } catch (const Error&) {
  }
}

// --- quantum preemption: oversized jobs are sliced ---------------------------

TEST(ServicePreemption, OversizedMapJobIsSlicedIntoQuanta) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Service::Options options;
  options.quantumElements = 1024;
  Service service(options);
  auto heavy = service.createSession({"heavy", 1.0, 0});
  auto light = service.createSession({"light", 1.0, 0});

  const std::size_t big = 5000;  // 5 quanta of 1024
  std::vector<float> in = mapInput(big, 0);
  trace::enable();
  auto bigJob = service.submitMap(heavy, kMapSrc, in);
  auto smallJob = service.submitMap(light, kMapSrc, mapInput(256, 1));

  bigJob.wait();
  smallJob.wait();
  service.drain();
  trace::disable();

  // Each quantum is its own skeleton launch: the oversized job must show up
  // as several kernel records under the heavy session, not one.
  int heavyKernels = 0;
  for (const auto& r : trace::snapshot()) {
    const bool kernel = r.kind == trace::Record::Kind::Kernel ||
                        r.kind == trace::Record::Kind::Fused;
    heavyKernels += kernel && r.session == heavy->id();
  }
  trace::clear();
  EXPECT_GE(heavyKernels, 5) << "the oversized job must run as multiple quanta";

  // Slicing must not change the result: compare against a direct Map run.
  Map<float(float)> map(kMapSrc);
  Vector<float> v(in);
  const std::vector<float> ref = map(v).toStdVector();
  const auto& got = bigJob.output();
  ASSERT_EQ(got.size(), ref.size());
  EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), ref.size() * sizeof(float)))
      << "sliced execution must be bit-identical to a single run";
}

// --- the compile cache keys on (tier, source), not source alone -------------

TEST(SessionProgramCache, TierIsPartOfTheCacheKey) {
  // skelcheck flips SKELCL_KC_OPT between programs; a cache keyed by source
  // alone would hand a tier-1 program to a tier-0 request (regression test
  // for exactly that staleness bug).
  struct EnvGuard {
    std::string saved;
    bool had;
    EnvGuard() {
      const char* v = std::getenv("SKELCL_KC_OPT");
      had = v != nullptr;
      if (had) saved = v;
    }
    ~EnvGuard() {
      if (had) ::setenv("SKELCL_KC_OPT", saved.c_str(), 1);
      else ::unsetenv("SKELCL_KC_OPT");
    }
  } guard;

  detail::SharedDeviceState state(sim::SystemConfig::teslaS1070(1));
  ::setenv("SKELCL_KC_OPT", "1", 1);
  const auto fast = state.hostProgram(kAddSrc);
  EXPECT_TRUE(fast->optimized);
  EXPECT_EQ(fast->tier, 1);

  ::setenv("SKELCL_KC_OPT", "0", 1);
  const auto ref = state.hostProgram(kAddSrc);
  EXPECT_FALSE(ref->optimized) << "stale tier-1 program served for a tier-0 request";
  EXPECT_EQ(ref->tier, 0);
  EXPECT_NE(fast.get(), ref.get());

  // Same tier again: the cache must still hit.
  const auto refAgain = state.hostProgram(kAddSrc);
  EXPECT_EQ(ref.get(), refAgain.get());

  // The device-program cache distinguishes tiers the same way.
  const char* kernelSrc = "__kernel void k(__global float* p) { p[get_global_id(0)] = 1.0f; }";
  const auto devRef = state.programForSource(kernelSrc);
  ::setenv("SKELCL_KC_OPT", "2", 1);
  const auto devT2 = state.programForSource(kernelSrc);
  EXPECT_NE(devRef.get(), devT2.get());
  EXPECT_EQ(devT2.get(), state.programForSource(kernelSrc).get());
}

// --- the trace collector resets between init/terminate cycles ---------------

TEST(TraceLifecycle, RecordsDoNotSurviveTerminateInitCycle) {
  trace::clear();
  trace::enable();
  {
    RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
    Map<float(float)> map(kMapSrc);
    Vector<float> v(mapInput(256, 0));
    map(v).toStdVector();
    EXPECT_FALSE(trace::snapshot().empty());
  }
  // Records survive terminate (a trace can still be written afterwards)...
  EXPECT_FALSE(trace::snapshot().empty());
  {
    // ...but a new init starts a new run: stale records must not bleed in.
    RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
    EXPECT_TRUE(trace::snapshot().empty());
    EXPECT_TRUE(trace::enabled()) << "init resets records, not the enable switch";
  }
  trace::disable();
  trace::clear();
}
