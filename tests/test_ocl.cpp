// Tests for the simulated OpenCL host API: devices, buffers, programs,
// kernels, queues, events, and the time model they drive.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "kernelc/diagnostics.hpp"
#include "ocl/ocl.hpp"

using namespace skelcl;
using namespace skelcl::ocl;

namespace {

sim::SystemConfig s1070(int n) { return sim::SystemConfig::teslaS1070(n); }

TEST(OclPlatform, EnumeratesDevices) {
  Platform platform(s1070(4));
  EXPECT_EQ(platform.deviceCount(), 4);
  EXPECT_EQ(platform.devices().size(), 4u);
  EXPECT_EQ(platform.device(0).type(), sim::DeviceType::GPU);
  EXPECT_EQ(platform.device(3).name(), "Tesla T10 #3");
}

TEST(OclPlatform, DeviceIndexChecked) {
  Platform platform(s1070(1));
  EXPECT_THROW(platform.device(1), UsageError);
}

TEST(OclContext, RequiresDevices) {
  EXPECT_THROW(Context({}), UsageError);
}

TEST(OclBuffer, AllocationAccounting) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  Device& dev = platform.device(0);
  EXPECT_EQ(dev.memoryAllocated(), 0u);
  {
    Buffer buf(ctx, dev, 1024);
    EXPECT_EQ(dev.memoryAllocated(), 1024u);
    EXPECT_EQ(buf.size(), 1024u);
  }
  EXPECT_EQ(dev.memoryAllocated(), 0u);  // released on destruction
}

TEST(OclBuffer, ExhaustionThrows) {
  sim::SystemConfig cfg = s1070(1);
  cfg.devices[0].mem_bytes = 4 << 20;  // pretend a 4 MiB card to keep the test fast
  Platform platform(cfg);
  Context ctx(platform.devices());
  Device& dev = platform.device(0);
  Buffer big(ctx, dev, 3 << 20);
  EXPECT_THROW(Buffer(ctx, dev, 2 << 20), ResourceError);
  Buffer fits(ctx, dev, 512 << 10);
  EXPECT_GT(dev.memoryAllocated(), 3u << 20);
}

TEST(OclBuffer, ZeroSizeRejected) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  EXPECT_THROW(Buffer(ctx, platform.device(0), 0), UsageError);
}

TEST(OclBuffer, MoveTransfersOwnership) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  Device& dev = platform.device(0);
  Buffer a(ctx, dev, 256);
  Buffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dev.memoryAllocated(), 256u);
}

TEST(OclQueue, WriteReadRoundTrip) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Buffer buf(ctx, platform.device(0), 16 * sizeof(float));

  std::vector<float> in(16);
  std::iota(in.begin(), in.end(), 0.0f);
  queue.enqueueWriteBuffer(buf, 0, in.size() * sizeof(float), in.data(), true);

  std::vector<float> out(16, -1.0f);
  queue.enqueueReadBuffer(buf, 0, out.size() * sizeof(float), out.data(), true);
  EXPECT_EQ(in, out);
}

TEST(OclQueue, PartialWriteWithOffset) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Buffer buf(ctx, platform.device(0), 8 * sizeof(float));
  std::vector<float> zero(8, 0.0f);
  queue.enqueueWriteBuffer(buf, 0, 8 * sizeof(float), zero.data(), true);

  const float v = 42.0f;
  queue.enqueueWriteBuffer(buf, 3 * sizeof(float), sizeof(float), &v, true);

  std::vector<float> out(8);
  queue.enqueueReadBuffer(buf, 0, 8 * sizeof(float), out.data(), true);
  EXPECT_FLOAT_EQ(out[3], 42.0f);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
}

TEST(OclQueue, RangeChecked) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Buffer buf(ctx, platform.device(0), 64);
  char data[128] = {};
  EXPECT_THROW(queue.enqueueWriteBuffer(buf, 0, 128, data, true), UsageError);
  EXPECT_THROW(queue.enqueueReadBuffer(buf, 32, 64, data, true), UsageError);
}

TEST(OclQueue, WrongDeviceRejected) {
  Platform platform(s1070(2));
  Context ctx(platform.devices());
  CommandQueue queue0(ctx, platform.device(0));
  Buffer bufOn1(ctx, platform.device(1), 64);
  char data[64] = {};
  EXPECT_THROW(queue0.enqueueWriteBuffer(bufOn1, 0, 64, data, true), UsageError);
}

TEST(OclProgram, BuildAndRunSaxpyKernel) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));

  Program program(ctx,
                  "__kernel void saxpy(__global float* x, __global float* y, float a, int n) {"
                  "  int i = get_global_id(0);"
                  "  if (i < n) y[i] = a * x[i] + y[i];"
                  "}");
  program.build();
  Kernel kernel(program, "saxpy");

  const int n = 1000;
  std::vector<float> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[static_cast<size_t>(i)] = static_cast<float>(i);
    y[static_cast<size_t>(i)] = 1.0f;
  }
  Buffer bx(ctx, platform.device(0), n * sizeof(float));
  Buffer by(ctx, platform.device(0), n * sizeof(float));
  queue.enqueueWriteBuffer(bx, 0, n * sizeof(float), x.data(), true);
  queue.enqueueWriteBuffer(by, 0, n * sizeof(float), y.data(), true);

  kernel.setArg(0, bx);
  kernel.setArg(1, by);
  kernel.setArg(2, 2.0f);
  kernel.setArg(3, n);
  queue.enqueueNDRangeKernel(kernel, n);

  queue.enqueueReadBuffer(by, 0, n * sizeof(float), y.data(), true);
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(y[static_cast<size_t>(i)], 2.0f * i + 1.0f);
  }
}

TEST(OclProgram, BuildErrorProducesLog) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  Program program(ctx, "__kernel void broken(__global float* x) { x[0] = undeclared; }");
  try {
    program.build();
    FAIL() << "expected BuildError";
  } catch (const BuildError& e) {
    EXPECT_NE(std::string(e.log()).find("undeclared"), std::string::npos);
  }
  EXPECT_FALSE(program.built());
  EXPECT_NE(program.buildLog().find("undeclared"), std::string::npos);
}

TEST(OclProgram, BuildChargesHostTimeOnce) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  Program program(ctx, "__kernel void k(__global float* x) { x[get_global_id(0)] = 1.0f; }");
  program.build();
  const double after = platform.system().hostNow();
  EXPECT_GT(after, 0.0);
  program.build();  // idempotent: no second charge
  EXPECT_DOUBLE_EQ(platform.system().hostNow(), after);
  EXPECT_GT(program.buildTimeSeconds(), 0.0);
}

TEST(OclKernel, CreateBeforeBuildRejected) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  Program program(ctx, "__kernel void k(__global float* x) { }");
  EXPECT_THROW(Kernel(program, "k"), UsageError);
}

TEST(OclKernel, UnknownNameRejected) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  Program program(ctx, "__kernel void k(__global float* x) { x[0] = 1.0f; }");
  program.build();
  EXPECT_THROW(Kernel(program, "nope"), UsageError);
}

TEST(OclKernel, ArgTypeMismatchRejected) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  Program program(ctx, "__kernel void k(__global float* x, int n) { x[0] = (float)n; }");
  program.build();
  Kernel kernel(program, "k");
  Buffer buf(ctx, platform.device(0), 64);
  EXPECT_THROW(kernel.setArg(0, 5), UsageError);    // scalar to pointer param
  EXPECT_THROW(kernel.setArg(1, buf), UsageError);  // buffer to scalar param
  EXPECT_THROW(kernel.setArg(2, 5), UsageError);    // out of range
}

TEST(OclKernel, UnsetArgRejectedAtLaunch) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Program program(ctx, "__kernel void k(__global float* x, int n) { x[0] = (float)n; }");
  program.build();
  Kernel kernel(program, "k");
  Buffer buf(ctx, platform.device(0), 64);
  kernel.setArg(0, buf);
  EXPECT_THROW(queue.enqueueNDRangeKernel(kernel, 1), UsageError);
}

TEST(OclKernel, ScalarConversionRoundsToParamType) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Program program(ctx, "__kernel void k(__global float* out, float a) { out[0] = a; }");
  program.build();
  Kernel kernel(program, "k");
  Buffer buf(ctx, platform.device(0), sizeof(float));
  kernel.setArg(0, buf);
  kernel.setArg(1, 3.14159265358979);  // double -> float param
  queue.enqueueNDRangeKernel(kernel, 1);
  float out = 0;
  queue.enqueueReadBuffer(buf, 0, sizeof(float), &out, true);
  EXPECT_FLOAT_EQ(out, 3.14159265f);
}

TEST(OclQueue, EventsAreOrderedInQueue) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Buffer buf(ctx, platform.device(0), 1 << 20);
  std::vector<char> data(1 << 20);
  const Event a = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  const Event b = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_GE(b.profilingStart(), a.profilingEnd());
  EXPECT_GT(a.duration(), 0.0);
}

TEST(OclQueue, ExplicitDependenciesRespected) {
  Platform platform(s1070(4));
  Context ctx(platform.devices());
  CommandQueue q0(ctx, platform.device(0));
  CommandQueue q2(ctx, platform.device(2));  // different PCIe link
  Buffer b0(ctx, platform.device(0), 1 << 20);
  Buffer b2(ctx, platform.device(2), 1 << 20);
  std::vector<char> data(1 << 20);

  const Event a = q0.enqueueWriteBuffer(b0, 0, data.size(), data.data());
  const Event dep[] = {a};
  const Event b = q2.enqueueWriteBuffer(b2, 0, data.size(), data.data(), false, dep);
  EXPECT_GE(b.profilingStart(), a.profilingEnd());
}

TEST(OclQueue, IndependentDevicesOverlap) {
  Platform platform(s1070(4));
  Context ctx(platform.devices());
  CommandQueue q0(ctx, platform.device(0));
  CommandQueue q2(ctx, platform.device(2));
  Buffer b0(ctx, platform.device(0), 1 << 20);
  Buffer b2(ctx, platform.device(2), 1 << 20);
  std::vector<char> data(1 << 20);
  const Event a = q0.enqueueWriteBuffer(b0, 0, data.size(), data.data());
  const Event b = q2.enqueueWriteBuffer(b2, 0, data.size(), data.data());
  // Different links: the two uploads overlap in simulated time.
  EXPECT_LT(b.profilingStart(), a.profilingEnd());
}

TEST(OclQueue, FinishAdvancesHostClock) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Buffer buf(ctx, platform.device(0), 1 << 22);
  std::vector<char> data(1 << 22);
  const Event e = queue.enqueueWriteBuffer(buf, 0, data.size(), data.data());
  EXPECT_LT(platform.system().hostNow(), e.profilingEnd());
  queue.finish();
  EXPECT_DOUBLE_EQ(platform.system().hostNow(), e.profilingEnd());
}

TEST(OclQueue, CopyBufferAcrossDevices) {
  Platform platform(s1070(2));
  Context ctx(platform.devices());
  CommandQueue q0(ctx, platform.device(0));
  Buffer src(ctx, platform.device(0), 4 * sizeof(int));
  Buffer dst(ctx, platform.device(1), 4 * sizeof(int));
  std::vector<int> data = {1, 2, 3, 4};
  q0.enqueueWriteBuffer(src, 0, sizeof(int) * 4, data.data(), true);
  q0.enqueueCopyBuffer(src, dst, 0, 0, 4 * sizeof(int));
  std::vector<int> out(4, 0);
  CommandQueue q1(ctx, platform.device(1));
  q1.enqueueReadBuffer(dst, 0, 4 * sizeof(int), out.data(), true);
  EXPECT_EQ(out, data);
}

TEST(OclQueue, FillBuffer) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Buffer buf(ctx, platform.device(0), 16);
  queue.enqueueFillBuffer(buf, std::byte{0}, 0, 16);
  std::vector<char> out(16, 'x');
  queue.enqueueReadBuffer(buf, 0, 16, out.data(), true);
  for (char c : out) EXPECT_EQ(c, 0);
}

TEST(OclQueue, CudaApiFasterThanOpenCl) {
  // The same kernel and data: the CUDA-profile queue must come out ~20%
  // faster, per the paper's Section IV-C measurement.
  auto run = [](Api api) {
    Platform platform(sim::SystemConfig::teslaS1070(1));
    Context ctx(platform.devices());
    CommandQueue queue(ctx, platform.device(0), api);
    Program program(ctx,
                    "__kernel void k(__global float* x) {"
                    "  int i = get_global_id(0); float s = 0.0f;"
                    "  for (int j = 0; j < 200; ++j) s += (float)j;"
                    "  x[i] = s; }");
    program.build();
    platform.system().resetClock();
    Kernel kernel(program, "k");
    Buffer buf(ctx, platform.device(0), 1024 * sizeof(float));
    kernel.setArg(0, buf);
    const Event e = queue.enqueueNDRangeKernel(kernel, 1024);
    return e.duration();
  };
  const double cuda = run(Api::Cuda);
  const double opencl = run(Api::OpenCL);
  EXPECT_GT(opencl, cuda);
  EXPECT_NEAR(opencl / cuda, 1.0 / 0.84, 0.05);
}

TEST(OclQueue, KernelFaultPropagates) {
  Platform platform(s1070(1));
  Context ctx(platform.devices());
  CommandQueue queue(ctx, platform.device(0));
  Program program(ctx, "__kernel void k(__global float* x) { x[1000000] = 1.0f; }");
  program.build();
  Kernel kernel(program, "k");
  Buffer buf(ctx, platform.device(0), 64);
  kernel.setArg(0, buf);
  EXPECT_THROW(queue.enqueueNDRangeKernel(kernel, 1), kc::VmError);
}

}  // namespace
