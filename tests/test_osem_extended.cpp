// Extended OSEM tests: convergence over passes, subset-count effects, and
// the Section V showcase — the unchanged SkelCL reconstruction on a
// dOpenCL-aggregated distributed system.
#include <gtest/gtest.h>

#include "core/skelcl.hpp"
#include "docl/docl.hpp"
#include "osem/osem.hpp"

using namespace skelcl::osem;

namespace {

OsemConfig baseConfig() {
  OsemConfig cfg;
  cfg.volume.nx = 16;
  cfg.volume.ny = 16;
  cfg.volume.nz = 16;
  cfg.eventsPerSubset = 1500;
  cfg.numSubsets = 4;
  cfg.seed = 42;
  return cfg;
}

double correlationAfter(std::size_t eventsPerSubset, int passes) {
  OsemConfig cfg = baseConfig();
  cfg.eventsPerSubset = eventsPerSubset;
  cfg.iterations = passes;
  const OsemData data = OsemData::generate(cfg);
  const auto result = runOsemSeq(data);
  return imageCorrelation(result.image, data.phantom.image());
}

TEST(OsemConvergence, RichDataImprovesWithASecondPass) {
  // With good statistics, another pass over the subsets sharpens the image.
  const double onePass = correlationAfter(20000, 1);
  const double twoPasses = correlationAfter(20000, 2);
  EXPECT_GT(onePass, 0.9);
  EXPECT_GT(twoPasses, onePass);
}

TEST(OsemConvergence, SparseDataAmplifiesNoiseOverPasses) {
  // The classic OSEM behaviour with low statistics: later iterations fit
  // noise (which is why clinical reconstructions iterate a fixed, small
  // number of times).  The first pass must still resemble the phantom.
  const double onePass = correlationAfter(1500, 1);
  const double threePasses = correlationAfter(1500, 3);
  EXPECT_GT(onePass, 0.75);
  EXPECT_LT(threePasses, onePass);
  EXPECT_GT(threePasses, 0.5);  // degraded, not destroyed
}

TEST(OsemConvergence, NrmseAgainstPhantomDropsWithMoreEvents) {
  OsemConfig small = baseConfig();
  OsemConfig large = baseConfig();
  large.eventsPerSubset = 6000;

  const auto resultSmall = runOsemSeq(OsemData::generate(small));
  const OsemData dataLarge = OsemData::generate(large);
  const auto resultLarge = runOsemSeq(dataLarge);

  // Normalize both to unit mean before comparing against the phantom, since
  // OSEM reconstructs activity up to a scale factor.
  auto normalized = [](std::vector<float> img) {
    double mean = 0.0;
    for (float v : img) mean += v;
    mean /= static_cast<double>(img.size());
    for (float& v : img) v = static_cast<float>(v / mean);
    return img;
  };
  auto normalizedPhantom = [&](const Phantom& p) { return normalized(p.image()); };

  const double errSmall =
      imageNrmse(normalized(resultSmall.image), normalizedPhantom(dataLarge.phantom));
  const double errLarge =
      imageNrmse(normalized(resultLarge.image), normalizedPhantom(dataLarge.phantom));
  EXPECT_LT(errLarge, errSmall);
}

TEST(OsemConvergence, MoreSubsetsSameEventsStillConverges) {
  OsemConfig cfg = baseConfig();
  cfg.numSubsets = 8;
  cfg.eventsPerSubset = 750;  // same total event count as the base config
  const OsemData data = OsemData::generate(cfg);
  const auto result = runOsemSeq(data);
  EXPECT_GT(imageCorrelation(result.image, data.phantom.image()), 0.5);
}

TEST(OsemDistributed, SkelClReconstructionRunsOnDoclDevices) {
  // Section V: SkelCL + dOpenCL gives one high-level programming model for
  // all devices of a distributed system.  The identical Listing-3 code
  // reconstructs on 8 remote GPUs spread over 3 nodes.
  const OsemData data = OsemData::generate(baseConfig());
  const auto reference = runOsemSeq(data);

  skelcl::docl::initSkelCL(skelcl::docl::laboratorySetup());
  OsemResult distributed;
  try {
    distributed = runOsemSkelCLPreInitialized(data);
  } catch (...) {
    skelcl::terminate();
    throw;
  }
  skelcl::terminate();

  EXPECT_LT(imageNrmse(distributed.image, reference.image), 2e-3);
}

TEST(OsemDistributed, NetworkMakesDistributedSlowerThanLocal) {
  const OsemData data = OsemData::generate(baseConfig());

  const auto local = runOsemSkelCL(data, 4);

  skelcl::docl::DistributedConfig cfg;
  cfg.servers.push_back(skelcl::sim::SystemConfig::teslaS1070(4));
  skelcl::docl::initSkelCL(cfg);
  OsemResult remote;
  try {
    remote = runOsemSkelCLPreInitialized(data);
  } catch (...) {
    skelcl::terminate();
    throw;
  }
  skelcl::terminate();

  // OSEM moves whole images every subset: the GbE hop must hurt.
  EXPECT_GT(remote.secondsPerSubset, 1.5 * local.secondsPerSubset);
}

}  // namespace
