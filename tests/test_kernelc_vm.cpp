// End-to-end execution tests for the kernel VM: arithmetic semantics,
// control flow, functions, pointers, structs, builtins, atomics, and the
// runtime checks the simulated device adds over real OpenCL.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "kernelc/diagnostics.hpp"
#include "kernelc_test_util.hpp"

using namespace kctest;
using skelcl::kc::VmError;

namespace {

// ---------------------------------------------------------------------------
// Scalar arithmetic semantics
// ---------------------------------------------------------------------------

TEST(KernelcVm, IntegerArithmetic) {
  const std::string src = "int f(int a, int b) { return a * b + a / b - a % b; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(17), Slot::fromInt(5)}), 17 * 5 + 17 / 5 - 17 % 5);
}

TEST(KernelcVm, IntegerDivisionTruncatesTowardZero) {
  const std::string src = "int f(int a, int b) { return a / b; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(-7), Slot::fromInt(2)}), -3);
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(7), Slot::fromInt(-2)}), -3);
}

TEST(KernelcVm, Int32Wraparound) {
  const std::string src = "int f(int a) { return a + 1; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(std::numeric_limits<std::int32_t>::max())}),
            std::numeric_limits<std::int32_t>::min());
}

TEST(KernelcVm, UnsignedDivisionAndComparison) {
  // 0xFFFFFFFF as uint is huge, as int it would be -1.
  const std::string src =
      "int f() { uint big = 0xFFFFFFFFu; uint two = 2u; "
      "  if (big > two) return (int)(big / two); return -1; }";
  EXPECT_EQ(callI(src, "f", {}), static_cast<std::int32_t>(0xFFFFFFFFu / 2u));
}

TEST(KernelcVm, SignedVsUnsignedShift) {
  EXPECT_EQ(callI("int f(int a) { return a >> 1; }", "f", {Slot::fromInt(-8)}), -4);
  EXPECT_EQ(callI("int f() { uint a = 0x80000000u; return (int)(a >> 31); }", "f", {}), 1);
}

TEST(KernelcVm, BitwiseOperators) {
  const std::string src =
      "int f(int a, int b) { return (a & b) | (a ^ b) | (~a & 0xFF) | (a << 2); }";
  const auto expect = [](std::int32_t a, std::int32_t b) {
    return (a & b) | (a ^ b) | (~a & 0xFF) | (a << 2);
  };
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(0x5A), Slot::fromInt(0x33)}), expect(0x5A, 0x33));
}

TEST(KernelcVm, FloatArithmeticRoundsToFloatPrecision) {
  // 1e8f + 1.0f == 1e8f in float, but not in double.
  const std::string src = "float f() { float a = 100000000.0f; return a + 1.0f; }";
  EXPECT_EQ(callF(src, "f", {}), 100000000.0f);
}

TEST(KernelcVm, DoubleArithmeticKeepsPrecision) {
  const std::string src = "double f() { double a = 100000000.0; return a + 1.0; }";
  EXPECT_EQ(callF(src, "f", {}), 100000001.0);
}

TEST(KernelcVm, MixedIntFloatPromotion) {
  const std::string src = "float f(int a, float b) { return a / b; }";
  EXPECT_FLOAT_EQ(static_cast<float>(callF(src, "f", {Slot::fromInt(7), Slot::fromFloat(2.0)})),
                  3.5f);
}

TEST(KernelcVm, ExplicitCasts) {
  EXPECT_EQ(callI("int f(float x) { return (int)x; }", "f", {Slot::fromFloat(3.9)}), 3);
  EXPECT_EQ(callI("int f(float x) { return (int)x; }", "f", {Slot::fromFloat(-3.9)}), -3);
  EXPECT_FLOAT_EQ(
      static_cast<float>(callF("float f(int x) { return (float)x / 2; }", "f",
                               {Slot::fromInt(7)})),
      3.5f);
}

TEST(KernelcVm, TernaryOperator) {
  const std::string src = "int f(int a) { return a > 0 ? a : -a; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(-5)}), 5);
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(5)}), 5);
}

TEST(KernelcVm, ComparisonChain) {
  const std::string src =
      "int f(int a, int b) { return (a < b) + (a <= b) + (a > b) + (a >= b) + (a == b) + (a != b); }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(1), Slot::fromInt(2)}), 3);
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(2), Slot::fromInt(2)}), 3);
}

TEST(KernelcVm, ShortCircuitAndSkipsRhs) {
  // If && did not short-circuit, the division by zero would fault.
  const std::string src = "int f(int a) { return a != 0 && 10 / a > 1; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(0)}), 0);
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(5)}), 1);
}

TEST(KernelcVm, ShortCircuitOrSkipsRhs) {
  const std::string src = "int f(int a) { return a == 0 || 10 / a > 1; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(0)}), 1);
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(2)}), 1);
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(10)}), 0);
}

TEST(KernelcVm, LogicalNot) {
  EXPECT_EQ(callI("int f(int a) { return !a; }", "f", {Slot::fromInt(7)}), 0);
  EXPECT_EQ(callI("int f(int a) { return !a; }", "f", {Slot::fromInt(0)}), 1);
  EXPECT_EQ(callI("int f(float a) { return !a; }", "f", {Slot::fromFloat(0.0)}), 1);
}

// ---------------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------------

TEST(KernelcVm, WhileLoopSum) {
  const std::string src =
      "int f(int n) { int s = 0; int i = 1; while (i <= n) { s += i; ++i; } return s; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(100)}), 5050);
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(0)}), 0);
}

TEST(KernelcVm, ForLoopWithBreakAndContinue) {
  const std::string src = R"(
    int f(int n) {
      int s = 0;
      for (int i = 0; i < n; ++i) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        s += i;
      }
      return s;
    })";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(100)}), 1 + 3 + 5 + 7 + 9);
}

TEST(KernelcVm, DoWhileExecutesAtLeastOnce) {
  const std::string src = "int f() { int i = 0; do { ++i; } while (i < 0); return i; }";
  EXPECT_EQ(callI(src, "f", {}), 1);
}

TEST(KernelcVm, NestedLoops) {
  const std::string src = R"(
    int f(int n) {
      int c = 0;
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
          if (i != j) ++c;
      return c;
    })";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(5)}), 20);
}

TEST(KernelcVm, BreakLeavesOnlyInnerLoop) {
  const std::string src = R"(
    int f() {
      int c = 0;
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 100; ++j) { if (j == 2) break; ++c; }
      }
      return c;
    })";
  EXPECT_EQ(callI(src, "f", {}), 6);
}

TEST(KernelcVm, IncrementDecrementSemantics) {
  const std::string src =
      "int f() { int i = 5; int a = i++; int b = ++i; int c = i--; int d = --i; "
      "  return a * 1000 + b * 100 + c * 10 + d; }";
  EXPECT_EQ(callI(src, "f", {}), 5 * 1000 + 7 * 100 + 7 * 10 + 5);
}

TEST(KernelcVm, InfiniteLoopTrips) {
  const std::string src = "int f() { int i = 0; for (;;) { ++i; } return i; }";
  EXPECT_THROW(callI(src, "f", {}), VmError);
}

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

TEST(KernelcVm, FunctionCallAndForwardReference) {
  const std::string src = R"(
    int twice(int x) { return helper(x) + helper(x); }  // uses a later function
    int helper(int x) { return x + 1; }
  )";
  EXPECT_EQ(callI(src, "twice", {Slot::fromInt(5)}), 12);
}

TEST(KernelcVm, Recursion) {
  const std::string src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
  EXPECT_EQ(callI(src, "fib", {Slot::fromInt(10)}), 55);
}

TEST(KernelcVm, DeepRecursionTrips) {
  const std::string src = "int f(int n) { if (n == 0) return 0; return f(n - 1) + 1; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(100)}), 100);
  EXPECT_THROW(callI(src, "f", {Slot::fromInt(100000)}), VmError);
}

TEST(KernelcVm, MissingReturnTraps) {
  const std::string src = "int f(int a) { if (a > 0) return 1; }";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(5)}), 1);
  EXPECT_THROW(callI(src, "f", {Slot::fromInt(-5)}), VmError);
}

TEST(KernelcVm, ArgumentConversionOnCall) {
  const std::string src =
      "float half(float x) { return x / 2.0f; } float f(int a) { return half(a); }";
  EXPECT_FLOAT_EQ(static_cast<float>(callF(src, "f", {Slot::fromInt(7)})), 3.5f);
}

// ---------------------------------------------------------------------------
// Pointers, arrays, buffers
// ---------------------------------------------------------------------------

TEST(KernelcVm, KernelWritesBuffer) {
  const std::string src =
      "__kernel void k(__global float* out, int n) {"
      "  int i = get_global_id(0);"
      "  if (i < n) out[i] = (float)i * 2.0f;"
      "}";
  Harness h(src);
  std::vector<float> out(16, -1.0f);
  const Slot args[] = {h.addBuffer(out), Slot::fromInt(16)};
  h.run("k", args, 16);
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(out[static_cast<size_t>(i)], 2.0f * i);
}

TEST(KernelcVm, GlobalSizeBuiltin) {
  const std::string src =
      "__kernel void k(__global int* out) { out[get_global_id(0)] = get_global_size(0); }";
  Harness h(src);
  std::vector<std::int32_t> out(5, 0);
  const Slot args[] = {h.addBuffer(out)};
  h.run("k", args, 5);
  for (auto v : out) EXPECT_EQ(v, 5);
}

TEST(KernelcVm, PointerArithmeticWalk) {
  const std::string src = R"(
    float f(__global float* p, int n) {
      float s = 0.0f;
      __global float* end = p + n;
      while (p != end) { s += *p; ++p; }
      return s;
    })";
  Harness h(src);
  std::vector<float> data = {1, 2, 3, 4, 5};
  const Slot args[] = {h.addBuffer(data), Slot::fromInt(5)};
  EXPECT_FLOAT_EQ(static_cast<float>(h.call("f", args).f), 15.0f);
}

TEST(KernelcVm, NegativePointerOffsetWithinBounds) {
  const std::string src = "float f(__global float* p) { __global float* q = p + 3; return q[-1]; }";
  Harness h(src);
  std::vector<float> data = {10, 20, 30, 40};
  const Slot args[] = {h.addBuffer(data)};
  EXPECT_FLOAT_EQ(static_cast<float>(h.call("f", args).f), 30.0f);
}

TEST(KernelcVm, LocalArrays) {
  const std::string src = R"(
    int f(int n) {
      int a[8];
      for (int i = 0; i < 8; ++i) a[i] = i * n;
      int s = 0;
      for (int i = 0; i < 8; ++i) s += a[i];
      return s;
    })";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(3)}), 3 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(KernelcVm, AddressOfLocal) {
  const std::string src = R"(
    void bump(int* p) { *p += 10; }
    int f() { int x = 5; bump(&x); bump(&x); return x; }
  )";
  EXPECT_EQ(callI(src, "f", {}), 25);
}

TEST(KernelcVm, OutOfBoundsReadFaults) {
  const std::string src = "float f(__global float* p) { return p[100]; }";
  Harness h(src);
  std::vector<float> data(4, 0.0f);
  const Slot args[] = {h.addBuffer(data)};
  try {
    h.call("f", args);
    FAIL() << "expected VmError";
  } catch (const VmError& e) {
    EXPECT_NE(std::string(e.what()).find("out-of-bounds"), std::string::npos);
  }
}

TEST(KernelcVm, OutOfBoundsWriteFaults) {
  const std::string src = "__kernel void k(__global float* p) { p[4] = 1.0f; }";
  Harness h(src);
  std::vector<float> data(4, 0.0f);
  const Slot args[] = {h.addBuffer(data)};
  EXPECT_THROW(h.run("k", args, 1), VmError);
}

TEST(KernelcVm, NullDereferenceFaults) {
  const std::string src = "float f(__global float* p) { return *p; }";
  Harness h(src);
  const Slot args[] = {h.nullPtr()};
  try {
    h.call("f", args);
    FAIL() << "expected VmError";
  } catch (const VmError& e) {
    EXPECT_NE(std::string(e.what()).find("null pointer"), std::string::npos);
  }
}

TEST(KernelcVm, DivisionByZeroFaults) {
  EXPECT_THROW(callI("int f(int a) { return 10 / a; }", "f", {Slot::fromInt(0)}), VmError);
  EXPECT_THROW(callI("int f(int a) { return 10 % a; }", "f", {Slot::fromInt(0)}), VmError);
}

// ---------------------------------------------------------------------------
// Structs
// ---------------------------------------------------------------------------

TEST(KernelcVm, StructMemberAccessThroughPointer) {
  const std::string src = R"(
    typedef struct { float x; float y; float z; } Vec3;
    float norm2(__global Vec3* v, int i) {
      return v[i].x * v[i].x + v[i].y * v[i].y + v[i].z * v[i].z;
    })";
  Harness h(src);
  struct Vec3 {
    float x, y, z;
  };
  std::vector<Vec3> data = {{1, 2, 3}, {4, 5, 6}};
  const Slot args[] = {h.addBuffer(data), Slot::fromInt(1)};
  EXPECT_FLOAT_EQ(static_cast<float>(h.call("norm2", args).f), 16.0f + 25.0f + 36.0f);
}

TEST(KernelcVm, StructLayoutMatchesHost) {
  // Mixed 4- and 8-byte members: layout must match x86-64 C++.
  const std::string src = R"(
    typedef struct { float a; double b; int c; } Mixed;
    double f(__global Mixed* m) { return (double)m->a + m->b + (double)m->c; }
  )";
  struct Mixed {
    float a;
    double b;
    int c;
  };
  static_assert(sizeof(Mixed) == 24);
  Harness h(src);
  std::vector<Mixed> data = {{1.5f, 2.25, 3}};
  const Slot args[] = {h.addBuffer(data)};
  EXPECT_DOUBLE_EQ(h.call("f", args).f, 1.5 + 2.25 + 3.0);
}

TEST(KernelcVm, LocalStructCopyAndModify) {
  const std::string src = R"(
    typedef struct { int a; int b; } Pair;
    int f(__global Pair* p) {
      Pair tmp = *p;       // copy in ('local' is a reserved OpenCL keyword)
      tmp.a += 100;        // modify the copy
      *p = tmp;            // copy back
      return tmp.a + tmp.b;
    })";
  struct Pair {
    int a, b;
  };
  Harness h(src);
  std::vector<Pair> data = {{1, 2}};
  const Slot args[] = {h.addBuffer(data)};
  EXPECT_EQ(h.call("f", args).i, 103);
  EXPECT_EQ(data[0].a, 101);  // write-back visible to the host
}

TEST(KernelcVm, NestedStructs) {
  const std::string src = R"(
    typedef struct { float x; float y; } P2;
    typedef struct { P2 lo; P2 hi; } Box;
    float area(__global Box* b) { return (b->hi.x - b->lo.x) * (b->hi.y - b->lo.y); }
  )";
  struct P2 {
    float x, y;
  };
  struct Box {
    P2 lo, hi;
  };
  Harness h(src);
  std::vector<Box> data = {{{1, 1}, {4, 3}}};
  const Slot args[] = {h.addBuffer(data)};
  EXPECT_FLOAT_EQ(static_cast<float>(h.call("area", args).f), 6.0f);
}

TEST(KernelcVm, SizeofStruct) {
  const std::string src =
      "typedef struct { float a; double b; int c; } Mixed;"
      "int f() { return (int)sizeof(Mixed); }";
  EXPECT_EQ(callI(src, "f", {}), 24);
}

// ---------------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------------

TEST(KernelcVm, MathBuiltins) {
  EXPECT_FLOAT_EQ(static_cast<float>(callF("float f(float x) { return sqrt(x); }", "f",
                                           {Slot::fromFloat(9.0)})),
                  3.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(callF("float f(float x) { return fabs(x); }", "f",
                                           {Slot::fromFloat(-2.5)})),
                  2.5f);
  EXPECT_NEAR(callF("float f(float x) { return exp(log(x)); }", "f", {Slot::fromFloat(7.0)}),
              7.0, 1e-5);
  EXPECT_NEAR(callF("float f(float a, float b) { return pow(a, b); }", "f",
                    {Slot::fromFloat(2.0), Slot::fromFloat(10.0)}),
              1024.0, 1e-3);
}

TEST(KernelcVm, MathBuiltinDoubleOverload) {
  // The double overload must keep double precision.
  const double v = callF("double f(double x) { return sqrt(x); }", "f", {Slot::fromFloat(2.0)});
  EXPECT_DOUBLE_EQ(v, std::sqrt(2.0));
}

TEST(KernelcVm, MinMaxClampPickIntOverloadForInts) {
  EXPECT_EQ(callI("int f(int a, int b) { return min(a, b) + max(a, b); }", "f",
                  {Slot::fromInt(3), Slot::fromInt(8)}),
            11);
  EXPECT_EQ(callI("int f(int x) { return clamp(x, 0, 10); }", "f", {Slot::fromInt(42)}), 10);
  EXPECT_EQ(callI("int f(int x) { return abs(x); }", "f", {Slot::fromInt(-9)}), 9);
}

TEST(KernelcVm, AsIntAsFloatRoundTrip) {
  const std::string src = "float f(float x) { return as_float(as_int(x)); }";
  EXPECT_FLOAT_EQ(static_cast<float>(callF(src, "f", {Slot::fromFloat(3.14)})),
                  static_cast<float>(3.14));
}

TEST(KernelcVm, AtomicAddInt) {
  const std::string src =
      "__kernel void k(__global int* c) { atomic_add(c, 1); atomic_add(c + 1, 2); }";
  Harness h(src);
  std::vector<std::int32_t> counters = {0, 0};
  const Slot args[] = {h.addBuffer(counters)};
  h.run("k", args, 100);
  EXPECT_EQ(counters[0], 100);
  EXPECT_EQ(counters[1], 200);
}

TEST(KernelcVm, AtomicAddFloat) {
  const std::string src = "__kernel void k(__global float* c) { atomic_add_f(c, 0.5f); }";
  Harness h(src);
  std::vector<float> acc = {0.0f};
  const Slot args[] = {h.addBuffer(acc)};
  h.run("k", args, 64);
  EXPECT_FLOAT_EQ(acc[0], 32.0f);
}

TEST(KernelcVm, AtomicMinMax) {
  const std::string src =
      "__kernel void k(__global int* mm) {"
      "  int i = get_global_id(0);"
      "  atomic_min(mm, i); atomic_max(mm + 1, i);"
      "}";
  Harness h(src);
  std::vector<std::int32_t> mm = {1000, -1000};
  const Slot args[] = {h.addBuffer(mm)};
  h.run("k", args, 37);
  EXPECT_EQ(mm[0], 0);
  EXPECT_EQ(mm[1], 36);
}

TEST(KernelcVm, BarrierIsANoOp) {
  const std::string src =
      "__kernel void k(__global int* out) { barrier(0); out[get_global_id(0)] = 1; }";
  Harness h(src);
  std::vector<std::int32_t> out(4, 0);
  const Slot args[] = {h.addBuffer(out)};
  h.run("k", args, 4);
  for (auto v : out) EXPECT_EQ(v, 1);
}

// ---------------------------------------------------------------------------
// Instruction counting (feeds the device time model)
// ---------------------------------------------------------------------------

TEST(KernelcVm, InstructionCountScalesWithWork) {
  const std::string src =
      "__kernel void k(__global float* out, int n) {"
      "  int i = get_global_id(0); float s = 0.0f;"
      "  for (int j = 0; j < n; ++j) s += (float)j;"
      "  out[i] = s; }";
  Harness h1(src);
  std::vector<float> out1(1);
  const Slot args1[] = {h1.addBuffer(out1), Slot::fromInt(10)};
  h1.run("k", args1, 1);

  Harness h2(src);
  std::vector<float> out2(1);
  const Slot args2[] = {h2.addBuffer(out2), Slot::fromInt(1000)};
  h2.run("k", args2, 1);

  EXPECT_GT(h1.instructions(), 0u);
  // 100x more loop iterations -> roughly 100x more instructions.
  const double ratio =
      static_cast<double>(h2.instructions()) / static_cast<double>(h1.instructions());
  EXPECT_GT(ratio, 50.0);
  EXPECT_LT(ratio, 150.0);
}

}  // namespace
