// Mandelbrot implementations: equivalence with the sequential reference and
// paper-shaped timing relations.
#include <gtest/gtest.h>

#include "mandel/mandel.hpp"

using namespace skelcl::mandel;

namespace {

MandelConfig smallConfig() {
  MandelConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.maxIterations = 48;
  return cfg;
}

TEST(Mandel, SequentialHasExpectedStructure) {
  const auto result = mandelSeq(smallConfig());
  ASSERT_EQ(result.iterations.size(), 96u * 64u);
  // the set interior (maxIter) and the far exterior (few iterations) both occur
  int interior = 0;
  int exterior = 0;
  for (int n : result.iterations) {
    if (n == 48) ++interior;
    if (n <= 2) ++exterior;
  }
  EXPECT_GT(interior, 100);
  EXPECT_GT(exterior, 100);
}

TEST(Mandel, SkelClMatchesSequentialOnAllGpuCounts) {
  const auto ref = mandelSeq(smallConfig());
  for (int gpus : {1, 2, 4}) {
    const auto result = mandelSkelCL(smallConfig(), gpus);
    EXPECT_EQ(result.iterations, ref.iterations) << gpus << " GPUs";
  }
}

TEST(Mandel, OclMatchesSequential) {
  const auto ref = mandelSeq(smallConfig());
  for (int gpus : {1, 4}) {
    EXPECT_EQ(mandelOcl(smallConfig(), gpus).iterations, ref.iterations);
  }
}

TEST(Mandel, CudaMatchesSequential) {
  const auto ref = mandelSeq(smallConfig());
  for (int gpus : {1, 3}) {
    EXPECT_EQ(mandelCuda(smallConfig(), gpus).iterations, ref.iterations);
  }
}

TEST(Mandel, TimingRelationsMatchPaper) {
  // CUDA fastest, SkelCL close to OpenCL; multi-GPU speeds Mandelbrot up
  // nearly linearly (it is embarrassingly parallel with one download).  Use
  // a compute-bound image size so launch/transfer overheads do not mask the
  // scaling.
  MandelConfig cfg;
  cfg.width = 384;
  cfg.height = 256;
  cfg.maxIterations = 64;
  const auto skelcl1 = mandelSkelCL(cfg, 1);
  const auto skelcl4 = mandelSkelCL(cfg, 4);
  const auto ocl1 = mandelOcl(cfg, 1);
  const auto cuda1 = mandelCuda(cfg, 1);

  EXPECT_LT(cuda1.simSeconds, ocl1.simSeconds);
  EXPECT_NEAR(skelcl1.simSeconds / ocl1.simSeconds, 1.0, 0.08);
  EXPECT_LT(skelcl4.simSeconds, 0.45 * skelcl1.simSeconds);
}

}  // namespace
