// Matrix<T>, the MapOverlap stencil skeletons (1D and 2D, neutral and clamp
// boundaries, inter-device halo exchange), MapPairs, and the partition /
// health edge cases they exposed: tiny-input partition rounding, degraded
// devices without scheduler weights, and empty/single-element vectors
// through every skeleton.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "core/detail/runtime.hpp"
#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"
#include "sim/rng.hpp"

using namespace skelcl;

namespace {

// Stencil bit-identity across device counts needs a deterministic VM; float
// kernels here are per-element independent, but pin to one thread anyway so
// the comparisons can be memcmp-strict.
const int kForceSingleThread = [] {
  setenv("SKELCL_THREADS", "1", 1);
  return 0;
}();

struct RuntimeGuard {
  explicit RuntimeGuard(sim::SystemConfig config) { init(std::move(config)); }
  ~RuntimeGuard() {
    trace::disable();
    trace::clear();
    if (detail::Runtime::initialized()) terminate();
  }
};

std::vector<float> randomFloats(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-8.0, 8.0));
  return v;
}

// Out-of-range read under a boundary policy (the host reference model).
float at1(const std::vector<float>& v, std::ptrdiff_t i, Padding p, float neutral) {
  const auto n = static_cast<std::ptrdiff_t>(v.size());
  if (i >= 0 && i < n) return v[static_cast<std::size_t>(i)];
  if (p == Padding::Clamp) return v[static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(i, 0, n - 1))];
  return neutral;
}

float at2(const std::vector<float>& m, std::size_t rows, std::size_t cols, std::ptrdiff_t r,
          std::ptrdiff_t c, Padding p, float neutral) {
  const auto nr = static_cast<std::ptrdiff_t>(rows);
  const auto nc = static_cast<std::ptrdiff_t>(cols);
  if (r >= 0 && r < nr && c >= 0 && c < nc) {
    return m[static_cast<std::size_t>(r * nc + c)];
  }
  if (p == Padding::Clamp) {
    const auto cr = std::clamp<std::ptrdiff_t>(r, 0, nr - 1);
    const auto cc = std::clamp<std::ptrdiff_t>(c, 0, nc - 1);
    return m[static_cast<std::size_t>(cr * nc + cc)];
  }
  return neutral;
}

}  // namespace

// ---------------------------------------------------------------------------
// Distribution::partition edge cases (the tiny-input rounding bug)
// ---------------------------------------------------------------------------

TEST(DistributionPartition, TinyAndAwkwardCountsCoverExactly) {
  // (count, deviceCount): every case must produce contiguous, disjoint,
  // exactly covering parts with no zero-size part.  Before the rounding fix,
  // count < deviceCount produced trailing zero-size parts (partition(2, 4)
  // returned 4 parts) whose empty buffers leaked into skeleton plans.
  const std::vector<std::pair<std::size_t, int>> cases = {
      {0, 1}, {0, 4}, {1, 1}, {1, 4}, {2, 4}, {3, 4}, {3, 8},
      {5, 4}, {7, 3}, {100, 4}, {1001, 3}, {4, 4}, {8, 4},
  };
  for (const auto& [count, devices] : cases) {
    const auto parts = Distribution::block().partition(count, devices);
    EXPECT_EQ(parts.size(), std::min(count, static_cast<std::size_t>(devices)))
        << "count=" << count << " devices=" << devices;
    std::size_t offset = 0;
    for (const auto& p : parts) {
      EXPECT_EQ(p.offset, offset) << "count=" << count << " devices=" << devices;
      EXPECT_GT(p.size, 0u) << "count=" << count << " devices=" << devices;
      offset += p.size;
    }
    EXPECT_EQ(offset, count) << "count=" << count << " devices=" << devices;
  }
}

TEST(DistributionPartition, WeightedTinyCounts) {
  // Zero-weight devices never receive a part; positive-weight devices with a
  // share rounding to zero are dropped rather than handed empty parts.
  const auto parts = Distribution::block({0.0, 1.0, 1.0, 0.0}).partition(3, 4);
  std::size_t offset = 0;
  for (const auto& p : parts) {
    EXPECT_TRUE(p.device == 1 || p.device == 2) << p.device;
    EXPECT_EQ(p.offset, offset);
    EXPECT_GT(p.size, 0u);
    offset += p.size;
  }
  EXPECT_EQ(offset, 3u);

  // One element, heavy skew: exactly one part, on the heaviest device.
  const auto one = Distribution::block({0.1, 5.0, 0.1, 0.1}).partition(1, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].device, 1);
  EXPECT_EQ(one[0].size, 1u);
}

TEST(DistributionPartition, ExplicitDeviceListAfterLoss) {
  // Partition over survivors {0, 2, 3}: parts stay contiguous and only name
  // listed devices, even when count < survivor count.
  const std::vector<int> alive = {0, 2, 3};
  for (const std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{10}}) {
    const auto parts = Distribution::block().partition(count, alive);
    std::size_t offset = 0;
    for (const auto& p : parts) {
      EXPECT_TRUE(std::find(alive.begin(), alive.end(), p.device) != alive.end());
      EXPECT_EQ(p.offset, offset);
      EXPECT_GT(p.size, 0u);
      offset += p.size;
    }
    EXPECT_EQ(offset, count);
  }
}

// ---------------------------------------------------------------------------
// Degraded device without scheduler weights (the health-folding bug)
// ---------------------------------------------------------------------------

TEST(DegradedShare, UnweightedBlockShrinksOnDegradedDevice0) {
  // A watchdog-degraded device must receive less work even when the session
  // never set scheduler weights: health alone drives the block split.
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan;
  plan.hangCommands(0, 1);
  setFaultPlan(std::move(plan));

  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  Vector<int> out = twice(v);  // takes the watchdog strike on device 0
  ASSERT_DOUBLE_EQ(deviceHealth(0), 0.25);
  ASSERT_TRUE(detail::Session::current().partitionWeights().empty());

  Vector<int> out2 = twice(v);
  for (std::size_t i = 0; i < out2.size(); ++i) {
    ASSERT_EQ(out2[i], 2 * static_cast<int>(i)) << i;
  }
  // health 0.25 : 1.0 => 200 : 800 over 1000 elements
  EXPECT_EQ(out2.impl().partSizeOn(0), 200u);
  EXPECT_EQ(out2.impl().partSizeOn(1), 800u);
}

// ---------------------------------------------------------------------------
// Matrix container
// ---------------------------------------------------------------------------

TEST(MatrixContainer, ShapeInitAccessAndSharing) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  Matrix<float> m(3, 4);
  EXPECT_EQ(m.rowCount(), 3u);
  EXPECT_EQ(m.columnCount(), 4u);
  EXPECT_EQ(m.size(), 12u);
  m(1, 2) = 7.5f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.5f);

  Matrix<float> alias = m;  // shared handle, like Vector
  alias(1, 2) = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 9.0f);

  std::vector<float> init(6);
  for (std::size_t i = 0; i < 6; ++i) init[i] = static_cast<float>(i);
  Matrix<float> m2(2, 3, init);
  EXPECT_EQ(m2.toStdVector(), init);

  EXPECT_THROW(Matrix<float>(2, 3, std::vector<float>(5)), UsageError);
  EXPECT_THROW(Matrix<float>(2, 0), UsageError);
  Matrix<float> empty(0, 3);  // zero rows is a valid empty matrix
  EXPECT_TRUE(empty.empty());
}

// ---------------------------------------------------------------------------
// MapOverlap 1D
// ---------------------------------------------------------------------------

namespace {

class Stencil1DP : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(std::get<0>(GetParam()))); }
  void TearDown() override {
    trace::disable();
    trace::clear();
    terminate();
  }
  std::size_t n() const { return std::get<1>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    DevicesAndSizes, Stencil1DP,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{7},
                                         std::size_t{100}, std::size_t{1001})),
    [](const auto& info) {
      return "gpus" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

constexpr const char* kSum3 =
    "float func(__global float* in, int i) { return in[i - 1] + in[i] + in[i + 1]; }";

}  // namespace

TEST_P(Stencil1DP, Sum3NeutralMatchesReference) {
  MapOverlap<float(float)> sum3(kSum3, 1, Padding::Neutral, 0.0f);
  const std::vector<float> host = randomFloats(n(), 11);
  Vector<float> in(host);
  Vector<float> out = sum3(in);
  ASSERT_EQ(out.size(), n());
  for (std::size_t i = 0; i < n(); ++i) {
    const auto s = static_cast<std::ptrdiff_t>(i);
    EXPECT_FLOAT_EQ(out[i], at1(host, s - 1, Padding::Neutral, 0.0f) + host[i] +
                                at1(host, s + 1, Padding::Neutral, 0.0f))
        << i;
  }
}

TEST_P(Stencil1DP, Sum3ClampMatchesReference) {
  MapOverlap<float(float)> sum3(kSum3, 1, Padding::Clamp);
  const std::vector<float> host = randomFloats(n(), 12);
  Vector<float> in(host);
  Vector<float> out = sum3(in);
  for (std::size_t i = 0; i < n(); ++i) {
    const auto s = static_cast<std::ptrdiff_t>(i);
    EXPECT_FLOAT_EQ(out[i], at1(host, s - 1, Padding::Clamp, 0.0f) + host[i] +
                                at1(host, s + 1, Padding::Clamp, 0.0f))
        << i;
  }
}

TEST_P(Stencil1DP, Radius3WithScalarExtra) {
  MapOverlap<float(float)> wide(
      "float func(__global float* in, int i, float w) {"
      "  return w * (in[i - 3] + in[i - 1] + in[i] + in[i + 1] + in[i + 3]);"
      "}",
      3, Padding::Neutral, 1.0f);  // neutral 1.0 exercises non-zero padding
  const std::vector<float> host = randomFloats(n(), 13);
  Vector<float> in(host);
  Vector<float> out = wide(in, 0.5f);
  for (std::size_t i = 0; i < n(); ++i) {
    const auto s = static_cast<std::ptrdiff_t>(i);
    const float expect = 0.5f * (at1(host, s - 3, Padding::Neutral, 1.0f) +
                                 at1(host, s - 1, Padding::Neutral, 1.0f) + host[i] +
                                 at1(host, s + 1, Padding::Neutral, 1.0f) +
                                 at1(host, s + 3, Padding::Neutral, 1.0f));
    EXPECT_FLOAT_EQ(out[i], expect) << i;
  }
}

TEST(Stencil1D, MultiHopHaloWhenRadiusSpansSeveralParts) {
  // 8 elements over 4 GPUs -> 2 per device; radius 5 reaches across two
  // whole neighbouring parts plus part of a third, on both sides.
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(4));
  MapOverlap<int(int)> span(
      "int func(__global int* in, int i) { return in[i - 5] + in[i] + in[i + 5]; }", 5,
      Padding::Neutral, 0);
  Vector<int> in(8);
  for (std::size_t i = 0; i < 8; ++i) in[i] = 1 << i;
  Vector<int> out = span(in);
  for (std::size_t i = 0; i < 8; ++i) {
    const int lo = i >= 5 ? in[i - 5] : 0;
    const int hi = i + 5 < 8 ? in[i + 5] : 0;
    EXPECT_EQ(out[i], lo + in[i] + hi) << i;
  }
}

TEST(Stencil1D, InPlaceIsRejected) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  MapOverlap<float(float)> sum3(kSum3, 1, Padding::Clamp);
  Vector<float> v(randomFloats(64, 14));
  EXPECT_THROW(sum3(out(v), v), UsageError);
}

TEST(Stencil1D, EmptyInputYieldsEmptyOutput) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  MapOverlap<float(float)> sum3(kSum3, 1, Padding::Clamp);
  Vector<float> in(0);
  Vector<float> out = sum3(in);
  EXPECT_EQ(out.size(), 0u);
}

// ---------------------------------------------------------------------------
// MapOverlap 2D
// ---------------------------------------------------------------------------

namespace {

class Stencil2DP
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, std::size_t>> {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(std::get<0>(GetParam()))); }
  void TearDown() override {
    trace::disable();
    trace::clear();
    terminate();
  }
  std::size_t rows() const { return std::get<1>(GetParam()); }
  std::size_t cols() const { return std::get<2>(GetParam()); }
};

// Rows include non-divisible heights (3, 7, 33 across 2/4 GPUs) and fewer
// rows than devices (1, 3 on 4 GPUs) so halos cross several parts.
INSTANTIATE_TEST_SUITE_P(
    DevicesAndShapes, Stencil2DP,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(std::size_t{1}, std::size_t{3}, std::size_t{7},
                                         std::size_t{33}),
                       ::testing::Values(std::size_t{1}, std::size_t{5}, std::size_t{17})),
    [](const auto& info) {
      return "gpus" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param));
    });

// 3x3 Gaussian blur, radius 1 (the paper's stencil showcase).
constexpr const char* kGauss3 =
    "float func(__global float* m, int i, int s) {"
    "  return (m[i - s - 1] + 2.0f * m[i - s] + m[i - s + 1]"
    "        + 2.0f * m[i - 1] + 4.0f * m[i] + 2.0f * m[i + 1]"
    "        + m[i + s - 1] + 2.0f * m[i + s] + m[i + s + 1]) / 16.0f;"
    "}";

float gauss3Ref(const std::vector<float>& m, std::size_t rows, std::size_t cols,
                std::ptrdiff_t r, std::ptrdiff_t c, Padding p, float neutral) {
  auto a = [&](std::ptrdiff_t dr, std::ptrdiff_t dc) {
    return at2(m, rows, cols, r + dr, c + dc, p, neutral);
  };
  return (a(-1, -1) + 2.0f * a(-1, 0) + a(-1, 1) + 2.0f * a(0, -1) + 4.0f * a(0, 0) +
          2.0f * a(0, 1) + a(1, -1) + 2.0f * a(1, 0) + a(1, 1)) /
         16.0f;
}

// 5-point cross at distance 2, radius 2: on a 1- or 2-row part every halo
// access leaves the part.
constexpr const char* kCross2 =
    "float func(__global float* m, int i, int s) {"
    "  return m[i - 2 * s] + m[i - 2] + m[i] + m[i + 2] + m[i + 2 * s];"
    "}";

}  // namespace

TEST_P(Stencil2DP, Gauss3NeutralMatchesReference) {
  MapOverlap<float(float)> blur(kGauss3, 1, Padding::Neutral, 0.0f);
  const std::vector<float> host = randomFloats(rows() * cols(), 21);
  Matrix<float> in(rows(), cols(), host);
  Matrix<float> out = blur(in);
  ASSERT_EQ(out.rowCount(), rows());
  ASSERT_EQ(out.columnCount(), cols());
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < cols(); ++c) {
      EXPECT_FLOAT_EQ(out(r, c),
                      gauss3Ref(host, rows(), cols(), static_cast<std::ptrdiff_t>(r),
                                static_cast<std::ptrdiff_t>(c), Padding::Neutral, 0.0f))
          << r << "," << c;
    }
  }
}

TEST_P(Stencil2DP, Gauss3ClampMatchesReference) {
  MapOverlap<float(float)> blur(kGauss3, 1, Padding::Clamp);
  const std::vector<float> host = randomFloats(rows() * cols(), 22);
  Matrix<float> in(rows(), cols(), host);
  Matrix<float> out = blur(in);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t c = 0; c < cols(); ++c) {
      EXPECT_FLOAT_EQ(out(r, c),
                      gauss3Ref(host, rows(), cols(), static_cast<std::ptrdiff_t>(r),
                                static_cast<std::ptrdiff_t>(c), Padding::Clamp, 0.0f))
          << r << "," << c;
    }
  }
}

TEST_P(Stencil2DP, Radius2CrossBothPaddings) {
  for (const Padding p : {Padding::Neutral, Padding::Clamp}) {
    MapOverlap<float(float)> cross(kCross2, 2, p, 0.5f);
    const std::vector<float> host = randomFloats(rows() * cols(), 23);
    Matrix<float> in(rows(), cols(), host);
    Matrix<float> out = cross(in);
    for (std::size_t r = 0; r < rows(); ++r) {
      for (std::size_t c = 0; c < cols(); ++c) {
        const auto sr = static_cast<std::ptrdiff_t>(r);
        const auto sc = static_cast<std::ptrdiff_t>(c);
        const float expect = at2(host, rows(), cols(), sr - 2, sc, p, 0.5f) +
                             at2(host, rows(), cols(), sr, sc - 2, p, 0.5f) + host[r * cols() + c] +
                             at2(host, rows(), cols(), sr, sc + 2, p, 0.5f) +
                             at2(host, rows(), cols(), sr + 2, sc, p, 0.5f);
        EXPECT_FLOAT_EQ(out(r, c), expect) << r << "," << c;
      }
    }
  }
}

TEST(Stencil2D, HaloExchangeIsTraced) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(4));
  trace::enable();
  MapOverlap<float(float)> blur(kGauss3, 1, Padding::Clamp);
  Matrix<float> in(64, 16, randomFloats(64 * 16, 31));
  Matrix<float> out = blur(in);
  (void)out.hostData();
  trace::disable();

  int halos = 0;
  for (const auto& r : trace::snapshot()) {
    if (r.kind != trace::Record::Kind::Halo) continue;
    ++halos;
    EXPECT_NE(r.name.find("->"), std::string::npos) << r.name;
    EXPECT_GT(r.bytes, 0u) << "halo records are transfers";
  }
  // 4 parts, 3 interior edges, each edge one download + one upload per
  // direction = 4 halo records per edge.
  EXPECT_EQ(halos, 12);
}

TEST(Stencil2D, SingleDeviceNeedsNoHalo) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(1));
  trace::enable();
  MapOverlap<float(float)> blur(kGauss3, 1, Padding::Clamp);
  Matrix<float> in(32, 8, randomFloats(32 * 8, 32));
  Matrix<float> out = blur(in);
  (void)out.hostData();
  trace::disable();
  for (const auto& r : trace::snapshot()) {
    EXPECT_NE(r.kind, trace::Record::Kind::Halo) << r.name;
  }
}

TEST(Stencil2D, InPlaceIsRejected) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  MapOverlap<float(float)> blur(kGauss3, 1, Padding::Clamp);
  Matrix<float> m(8, 8, randomFloats(64, 33));
  EXPECT_THROW(blur(m, m), UsageError);
}

TEST(Stencil2D, EmptyMatrixYieldsEmptyOutput) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  MapOverlap<float(float)> blur(kGauss3, 1, Padding::Neutral, 0.0f);
  Matrix<float> in(0, 5);
  Matrix<float> out = blur(in);
  EXPECT_EQ(out.rowCount(), 0u);
  EXPECT_EQ(out.columnCount(), 5u);
}

// ---------------------------------------------------------------------------
// Stencils under faults
// ---------------------------------------------------------------------------

namespace {

// A few Jacobi sweeps with ping-pong buffers; returns the final bytes.
std::vector<float> jacobiRun(std::size_t rows, std::size_t cols, int sweeps) {
  MapOverlap<float(float)> step(
      "float func(__global float* m, int i, int s) {"
      "  return 0.25f * (m[i - s] + m[i - 1] + m[i + 1] + m[i + s]);"
      "}",
      1, Padding::Clamp);
  std::vector<float> init(rows * cols);
  for (std::size_t i = 0; i < init.size(); ++i) {
    init[i] = static_cast<float>((i * 2654435761u) % 1000) / 500.0f - 1.0f;
  }
  Matrix<float> a(rows, cols, init);
  Matrix<float> b(rows, cols);
  for (int it = 0; it < sweeps; ++it) {
    step(b, a);
    std::swap(a, b);
  }
  return a.toStdVector();
}

}  // namespace

TEST(StencilFaults, DeviceDeathMidJacobiRecoversBitIdentically) {
  // Kill device 2 of 4 after its first few commands: the iteration in flight
  // repartitions over the survivors, re-exchanges halos, and re-executes.
  // The result must be byte-for-byte the run of an undisturbed system —
  // stencil arithmetic is per-element, so ANY device count gives the same
  // bits; compare against a clean 3-GPU run (the survivor count).
  std::vector<float> clean3;
  {
    RuntimeGuard rt(sim::SystemConfig::teslaS1070(3));
    clean3 = jacobiRun(32, 12, 4);
  }
  std::vector<float> killed;
  {
    RuntimeGuard rt(sim::SystemConfig::teslaS1070(4));
    sim::FaultPlan plan;
    plan.killAfterCommands(2, 5);  // dies mid-stencil, after serving halos
    setFaultPlan(std::move(plan));
    killed = jacobiRun(32, 12, 4);
    EXPECT_EQ(aliveDeviceCount(), 3);
  }
  ASSERT_EQ(killed.size(), clean3.size());
  EXPECT_EQ(std::memcmp(killed.data(), clean3.data(), killed.size() * sizeof(float)), 0)
      << "recovered stencil must be bit-identical to the native 3-GPU run";
}

TEST(StencilFaults, WatchdogDegradeMidStencilStillCorrectAndShrinksShare) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan;
  plan.hangCommands(1);  // the first device-1 command hangs mid-stencil
  setFaultPlan(std::move(plan));

  MapOverlap<float(float)> blur(kGauss3, 1, Padding::Neutral, 0.0f);
  const std::size_t rows = 40, cols = 8;
  const std::vector<float> host = randomFloats(rows * cols, 41);
  Matrix<float> in(rows, cols, host);
  Matrix<float> out = blur(in);

  EXPECT_EQ(aliveDeviceCount(), 2) << "a hang degrades, never blacklists";
  EXPECT_EQ(degradeCount(1), 1);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_FLOAT_EQ(out(r, c),
                      gauss3Ref(host, rows, cols, static_cast<std::ptrdiff_t>(r),
                                static_cast<std::ptrdiff_t>(c), Padding::Neutral, 0.0f))
          << r << "," << c;
    }
  }
  // The next stencil plans around the straggler: 1.0 : 0.25 over 40 rows.
  Matrix<float> out2 = blur(in);
  (void)out2.hostData();
  EXPECT_EQ(out2.impl().rowVector().partSizeOn(0), 32u);
  EXPECT_EQ(out2.impl().rowVector().partSizeOn(1), 8u);
}

// ---------------------------------------------------------------------------
// MapPairs
// ---------------------------------------------------------------------------

namespace {

class MapPairsP : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(GetParam())); }
  void TearDown() override { terminate(); }
};

INSTANTIATE_TEST_SUITE_P(Devices, MapPairsP, ::testing::Values(1, 2, 3, 4),
                         [](const auto& info) { return "gpus" + std::to_string(info.param); });

}  // namespace

TEST_P(MapPairsP, OuterDifferenceMatchesReference) {
  MapPairs<float(float, float)> diff("float func(float a, float b) { return a - b; }");
  const std::vector<float> l = randomFloats(37, 51);
  const std::vector<float> r = randomFloats(23, 52);
  Matrix<float> out = diff(Vector<float>(l), Vector<float>(r));
  ASSERT_EQ(out.rowCount(), 37u);
  ASSERT_EQ(out.columnCount(), 23u);
  for (std::size_t i = 0; i < l.size(); ++i) {
    for (std::size_t j = 0; j < r.size(); ++j) {
      EXPECT_FLOAT_EQ(out(i, j), l[i] - r[j]) << i << "," << j;
    }
  }
}

TEST_P(MapPairsP, FewerRowsThanDevicesAndScalarExtra) {
  MapPairs<int(int, int)> f("int func(int a, int b, int k) { return a * k + b; }");
  Vector<int> l(2);
  l[0] = 1;
  l[1] = 2;
  Vector<int> r(3);
  r[0] = 10;
  r[1] = 20;
  r[2] = 30;
  Matrix<int> out(2, 3);
  f(out, l, r, 100);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(out(i, j), l[i] * 100 + r[j]) << i << "," << j;
    }
  }
}

TEST(MapPairs, ShapeErrors) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  MapPairs<float(float, float)> f("float func(float a, float b) { return a + b; }");
  EXPECT_THROW(f(Vector<float>(4), Vector<float>(0)), UsageError);  // no columns
  Matrix<float> wrong(3, 3);
  EXPECT_THROW(f(wrong, Vector<float>(4), Vector<float>(3)), UsageError);
  Matrix<float> empty = f(Vector<float>(0), Vector<float>(3));  // no rows is fine
  EXPECT_EQ(empty.rowCount(), 0u);
}

// ---------------------------------------------------------------------------
// Empty and single-element vectors through every skeleton
// ---------------------------------------------------------------------------

TEST(EmptyVectors, DefinedBehaviorAcrossSkeletons) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(3));
  Vector<float> empty(0);

  Map<float> inc("float func(float x) { return x + 1.0f; }");
  EXPECT_EQ(inc(empty).size(), 0u);

  Zip<float> add("float func(float a, float b) { return a + b; }");
  EXPECT_EQ(add(empty, Vector<float>(0)).size(), 0u);

  Scan<float> psum("float func(float a, float b) { return a + b; }");
  EXPECT_EQ(psum(empty).size(), 0u);

  Pipeline<float> pipe;
  pipe.map("float func(float x) { return 2.0f * x; }");
  EXPECT_EQ(pipe(empty).size(), 0u);

  // Reduce of nothing has no defined value: a usage error, not a crash.
  Reduce<float> sum("float func(float a, float b) { return a + b; }");
  EXPECT_THROW(sum(empty), UsageError);
}

TEST(EmptyVectors, SingleElementAcrossSkeletons) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(4));  // more devices than data
  Vector<float> one(1);
  one[0] = 3.0f;

  Map<float> inc("float func(float x) { return x + 1.0f; }");
  Vector<float> mapped = inc(one);
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_FLOAT_EQ(mapped[0], 4.0f);

  Reduce<float> sum("float func(float a, float b) { return a + b; }");
  EXPECT_FLOAT_EQ(sum(one), 3.0f);

  Scan<float> psum("float func(float a, float b) { return a + b; }");
  Vector<float> scanned = psum(one);
  ASSERT_EQ(scanned.size(), 1u);
  EXPECT_FLOAT_EQ(scanned[0], 3.0f);

  MapOverlap<float(float)> sum3(kSum3, 1, Padding::Clamp);
  Vector<float> st = sum3(one);
  ASSERT_EQ(st.size(), 1u);
  EXPECT_FLOAT_EQ(st[0], 9.0f);  // clamp: 3 + 3 + 3
}
