// Property-based tests: kernel-language arithmetic must match C++ semantics
// exactly, across randomized operands and the whole operator/type matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>

#include "kernelc_test_util.hpp"
#include "sim/rng.hpp"

using namespace kctest;
using skelcl::sim::Rng;

namespace {

// ---------------------------------------------------------------------------
// Integer binary operators vs. host semantics
// ---------------------------------------------------------------------------

struct IntOpCase {
  const char* op;
  std::int32_t (*eval)(std::int32_t, std::int32_t);
  bool avoidZeroRhs;
};

std::int32_t hAdd(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::int64_t>(a) + b);
}
std::int32_t hSub(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::int64_t>(a) - b);
}
std::int32_t hMul(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::int64_t>(a) * b);
}
std::int32_t hDiv(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::int64_t>(a) / b);
}
std::int32_t hRem(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::int64_t>(a) % b);
}
std::int32_t hAnd(std::int32_t a, std::int32_t b) { return a & b; }
std::int32_t hOr(std::int32_t a, std::int32_t b) { return a | b; }
std::int32_t hXor(std::int32_t a, std::int32_t b) { return a ^ b; }
std::int32_t hShl(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a)
                                   << (static_cast<std::uint32_t>(b) & 31u));
}
std::int32_t hShr(std::int32_t a, std::int32_t b) {
  return a >> (static_cast<std::uint32_t>(b) & 31u);
}

std::string intOpName(const ::testing::TestParamInfo<IntOpCase>& info) {
  static const char* names[] = {"add", "sub", "mul", "div", "rem",
                                "and", "or",  "xor", "shl", "shr"};
  return names[info.index];
}

class IntBinaryOp : public ::testing::TestWithParam<IntOpCase> {};

TEST_P(IntBinaryOp, MatchesHostOnRandomOperands) {
  const IntOpCase& c = GetParam();
  const std::string src =
      std::string("int f(int a, int b) { return a ") + c.op + " b; }";
  Harness h(src);
  Rng rng(0xABCDEF);
  for (int k = 0; k < 300; ++k) {
    const auto a = static_cast<std::int32_t>(rng.nextU64());
    auto b = static_cast<std::int32_t>(rng.nextU64());
    if (c.avoidZeroRhs && b == 0) b = 1;
    if (c.avoidZeroRhs && a == std::numeric_limits<std::int32_t>::min() && b == -1) b = 2;
    const Slot args[] = {Slot::fromInt(a), Slot::fromInt(b)};
    ASSERT_EQ(h.call("f", args).i, c.eval(a, b)) << a << " " << c.op << " " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IntBinaryOp,
    ::testing::Values(IntOpCase{"+", hAdd, false}, IntOpCase{"-", hSub, false},
                      IntOpCase{"*", hMul, false}, IntOpCase{"/", hDiv, true},
                      IntOpCase{"%", hRem, true}, IntOpCase{"&", hAnd, false},
                      IntOpCase{"|", hOr, false}, IntOpCase{"^", hXor, false},
                      IntOpCase{"<<", hShl, false}, IntOpCase{">>", hShr, false}),
    &intOpName);

// ---------------------------------------------------------------------------
// Unsigned semantics
// ---------------------------------------------------------------------------

struct UintOpCase {
  const char* op;
  std::uint32_t (*eval)(std::uint32_t, std::uint32_t);
  bool avoidZeroRhs;
};

std::uint32_t uDiv(std::uint32_t a, std::uint32_t b) { return a / b; }
std::uint32_t uRem(std::uint32_t a, std::uint32_t b) { return a % b; }
std::uint32_t uShr(std::uint32_t a, std::uint32_t b) { return a >> (b & 31u); }
std::uint32_t uLt(std::uint32_t a, std::uint32_t b) { return a < b ? 1u : 0u; }
std::uint32_t uGe(std::uint32_t a, std::uint32_t b) { return a >= b ? 1u : 0u; }

std::string uintOpName(const ::testing::TestParamInfo<UintOpCase>& info) {
  static const char* names[] = {"div", "rem", "shr", "lt", "ge"};
  return names[info.index];
}

class UintBinaryOp : public ::testing::TestWithParam<UintOpCase> {};

TEST_P(UintBinaryOp, MatchesHostOnRandomOperands) {
  const UintOpCase& c = GetParam();
  const std::string src =
      std::string("uint f(uint a, uint b) { return (uint)(a ") + c.op + " b); }";
  Harness h(src);
  Rng rng(0x1234);
  for (int k = 0; k < 300; ++k) {
    const auto a = static_cast<std::uint32_t>(rng.nextU64());
    auto b = static_cast<std::uint32_t>(rng.nextU64());
    if (c.avoidZeroRhs && b == 0) b = 1;
    const Slot args[] = {Slot::fromInt(static_cast<std::int64_t>(a)),
                         Slot::fromInt(static_cast<std::int64_t>(b))};
    ASSERT_EQ(static_cast<std::uint32_t>(h.call("f", args).i), c.eval(a, b))
        << a << " " << c.op << " " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, UintBinaryOp,
                         ::testing::Values(UintOpCase{"/", uDiv, true},
                                           UintOpCase{"%", uRem, true},
                                           UintOpCase{">>", uShr, false},
                                           UintOpCase{"<", uLt, false},
                                           UintOpCase{">=", uGe, false}),
                         &uintOpName);

// ---------------------------------------------------------------------------
// Float semantics: every operation rounds to binary32
// ---------------------------------------------------------------------------

struct FloatOpCase {
  const char* op;
  float (*eval)(float, float);
};

float fAdd(float a, float b) { return a + b; }
float fSub(float a, float b) { return a - b; }
float fMul(float a, float b) { return a * b; }
float fDiv(float a, float b) { return a / b; }

std::string floatOpName(const ::testing::TestParamInfo<FloatOpCase>& info) {
  static const char* names[] = {"add", "sub", "mul", "div"};
  return names[info.index];
}

class FloatBinaryOp : public ::testing::TestWithParam<FloatOpCase> {};

TEST_P(FloatBinaryOp, BitExactWithHostFloat) {
  const FloatOpCase& c = GetParam();
  const std::string src =
      std::string("float f(float a, float b) { return a ") + c.op + " b; }";
  Harness h(src);
  Rng rng(0xF10A7);
  for (int k = 0; k < 300; ++k) {
    const auto a = static_cast<float>(rng.uniform(-1e6, 1e6));
    auto b = static_cast<float>(rng.uniform(-1e6, 1e6));
    if (b == 0.0f) b = 1.0f;
    const Slot args[] = {Slot::fromFloat(a), Slot::fromFloat(b)};
    const float got = static_cast<float>(h.call("f", args).f);
    const float expect = c.eval(a, b);
    ASSERT_EQ(got, expect) << a << " " << c.op << " " << b;  // bit-exact
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, FloatBinaryOp,
                         ::testing::Values(FloatOpCase{"+", fAdd}, FloatOpCase{"-", fSub},
                                           FloatOpCase{"*", fMul}, FloatOpCase{"/", fDiv}),
                         &floatOpName);

// ---------------------------------------------------------------------------
// Math builtins against libm (float overloads re-round)
// ---------------------------------------------------------------------------

struct MathCase {
  const char* name;
  double (*ref)(double);
  double lo;
  double hi;
};

class MathBuiltin : public ::testing::TestWithParam<MathCase> {};

TEST_P(MathBuiltin, FloatOverloadMatchesRoundedLibm) {
  const MathCase& c = GetParam();
  const std::string src =
      std::string("float f(float x) { return ") + c.name + "(x); }";
  Harness h(src);
  Rng rng(0x77);
  for (int k = 0; k < 200; ++k) {
    const auto x = static_cast<float>(rng.uniform(c.lo, c.hi));
    const Slot args[] = {Slot::fromFloat(x)};
    const float got = static_cast<float>(h.call("f", args).f);
    const float expect = static_cast<float>(c.ref(static_cast<double>(x)));
    ASSERT_EQ(got, expect) << c.name << "(" << x << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFns, MathBuiltin,
    ::testing::Values(MathCase{"sqrt", std::sqrt, 0.0, 1e6},
                      MathCase{"fabs", std::fabs, -1e6, 1e6},
                      MathCase{"exp", std::exp, -20.0, 20.0},
                      MathCase{"log", std::log, 1e-6, 1e6},
                      MathCase{"sin", std::sin, -10.0, 10.0},
                      MathCase{"cos", std::cos, -10.0, 10.0},
                      MathCase{"floor", std::floor, -1e4, 1e4},
                      MathCase{"ceil", std::ceil, -1e4, 1e4}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Conversion matrix
// ---------------------------------------------------------------------------

TEST(KernelcConversions, IntToFloatAndBack) {
  Harness h("int f(int x) { return (int)(float)x; }");
  for (std::int32_t v : {0, 1, -1, 1 << 20, -(1 << 20), 16777216}) {
    const Slot args[] = {Slot::fromInt(v)};
    EXPECT_EQ(h.call("f", args).i, static_cast<std::int32_t>(static_cast<float>(v)));
  }
}

TEST(KernelcConversions, LargeIntLosesPrecisionInFloatExactlyAsHost) {
  Harness h("int f(int x) { return (int)(float)x; }");
  const std::int32_t v = 16777217;  // 2^24 + 1: not representable in float
  const Slot args[] = {Slot::fromInt(v)};
  EXPECT_EQ(h.call("f", args).i, 16777216);
}

TEST(KernelcConversions, UintToFloat) {
  Harness h("float f(uint x) { return (float)x; }");
  const Slot args[] = {Slot::fromInt(static_cast<std::int64_t>(0xFFFFFFFFu))};
  EXPECT_FLOAT_EQ(static_cast<float>(h.call("f", args).f),
                  static_cast<float>(0xFFFFFFFFu));
}

TEST(KernelcConversions, FloatToUint) {
  Harness h("uint f(float x) { return (uint)x; }");
  const Slot args[] = {Slot::fromFloat(3000000000.0)};
  EXPECT_EQ(static_cast<std::uint32_t>(h.call("f", args).i), 3000000000u);
}

TEST(KernelcConversions, DoubleToFloatRounds) {
  Harness h("float f(double x) { return (float)x; }");
  const double v = 0.1;  // not representable in either; rounds differently
  const Slot args[] = {Slot::fromFloat(v)};
  EXPECT_EQ(static_cast<float>(h.call("f", args).f), static_cast<float>(0.1));
}

TEST(KernelcConversions, IntUintRoundTrip) {
  Harness h("int f(int x) { return (int)(uint)x; }");
  for (std::int32_t v : {-1, -12345, 0, 7}) {
    const Slot args[] = {Slot::fromInt(v)};
    EXPECT_EQ(h.call("f", args).i, v);
  }
}

// ---------------------------------------------------------------------------
// Algorithmic cross-checks (whole programs)
// ---------------------------------------------------------------------------

TEST(KernelcPrograms, GcdMatchesStd) {
  const std::string src = R"(
    int f(int a, int b) {
      while (b != 0) { int t = a % b; a = b; b = t; }
      return a;
    })";
  Harness h(src);
  Rng rng(5);
  for (int k = 0; k < 100; ++k) {
    const auto a = static_cast<std::int32_t>(rng.below(100000)) + 1;
    const auto b = static_cast<std::int32_t>(rng.below(100000)) + 1;
    const Slot args[] = {Slot::fromInt(a), Slot::fromInt(b)};
    ASSERT_EQ(h.call("f", args).i, std::gcd(a, b));
  }
}

TEST(KernelcPrograms, CollatzTerminates) {
  const std::string src = R"(
    int f(int n) {
      int steps = 0;
      while (n != 1) {
        if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
        ++steps;
      }
      return steps;
    })";
  Harness h(src);
  const Slot args27[] = {Slot::fromInt(27)};
  EXPECT_EQ(h.call("f", args27).i, 111);
  const Slot args1[] = {Slot::fromInt(1)};
  EXPECT_EQ(h.call("f", args1).i, 0);
}

TEST(KernelcPrograms, InsertionSortInLocalArray) {
  const std::string src = R"(
    __kernel void k(__global int* data, int n) {
      int buf[16];
      for (int i = 0; i < n; ++i) buf[i] = data[i];
      for (int i = 1; i < n; ++i) {
        int key = buf[i];
        int j = i - 1;
        while (j >= 0 && buf[j] > key) { buf[j + 1] = buf[j]; --j; }
        buf[j + 1] = key;
      }
      for (int i = 0; i < n; ++i) data[i] = buf[i];
    })";
  Harness h(src);
  std::vector<std::int32_t> data = {9, -3, 5, 0, 12, 5, -3, 7};
  const Slot args[] = {h.addBuffer(data), Slot::fromInt(8)};
  h.run("k", args, 1);
  std::vector<std::int32_t> expect = data;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(data, expect);
}

TEST(KernelcPrograms, NewtonSqrtConvergesLikeFloatHost) {
  const std::string src = R"(
    float f(float x) {
      float guess = x > 1.0f ? x * 0.5f : 1.0f;
      for (int i = 0; i < 20; ++i) guess = 0.5f * (guess + x / guess);
      return guess;
    })";
  Harness h(src);
  for (float x : {2.0f, 10.0f, 12345.0f, 0.25f}) {
    const Slot args[] = {Slot::fromFloat(x)};
    EXPECT_NEAR(h.call("f", args).f, std::sqrt(x), 1e-3);
  }
}

}  // namespace
