// Preprocessor tests: object-like #define / #undef, word-boundary safety,
// line-number preservation, unsupported-directive diagnostics.
#include <gtest/gtest.h>

#include "kernelc/diagnostics.hpp"
#include "kernelc/preprocessor.hpp"
#include "kernelc_test_util.hpp"

using namespace kctest;
using skelcl::kc::CompileError;
using skelcl::kc::preprocess;

namespace {

TEST(KernelcPreprocessor, NoDirectivesPassThroughVerbatim) {
  const std::string src = "int f() { return 1; }";
  EXPECT_EQ(preprocess(src), src);
}

TEST(KernelcPreprocessor, DefineSubstitutesWholeIdentifiers) {
  const std::string out = preprocess("#define N 4\nint f() { return N + N1 + FN; }");
  EXPECT_NE(out.find("return 4 + N1 + FN;"), std::string::npos);
}

TEST(KernelcPreprocessor, CompiledProgramUsesDefines) {
  const std::string src = R"(
#define TILE 8
#define SCALE 2.5f
float f(int i) { return (float)(i * TILE) * SCALE; }
)";
  EXPECT_FLOAT_EQ(static_cast<float>(callF(src, "f", {Slot::fromInt(3)})), 3 * 8 * 2.5f);
}

TEST(KernelcPreprocessor, ChainedDefinesExpand) {
  const std::string src = R"(
#define A 3
#define B (A + 1)
int f() { return B * 2; }
)";
  EXPECT_EQ(callI(src, "f", {}), 8);
}

TEST(KernelcPreprocessor, UndefStopsSubstitution) {
  const std::string src = R"(
#define N 7
int g() { return N; }
#undef N
int f(int N) { return N + g(); }
)";
  EXPECT_EQ(callI(src, "f", {Slot::fromInt(1)}), 8);
}

TEST(KernelcPreprocessor, RedefinitionTakesLatestValue) {
  const std::string src = "#define X 1\n#define X 2\nint f() { return X; }";
  EXPECT_EQ(callI(src, "f", {}), 2);
}

TEST(KernelcPreprocessor, EmptyDefineErasesToken) {
  const std::string src = "#define RESTRICT\nfloat f(__global float* RESTRICT p) { return p[0]; }";
  Harness h(src);
  std::vector<float> data = {4.5f};
  const Slot args[] = {h.addBuffer(data)};
  EXPECT_FLOAT_EQ(static_cast<float>(h.call("f", args).f), 4.5f);
}

TEST(KernelcPreprocessor, LineNumbersPreservedForDiagnostics) {
  const std::string src = "#define N 4\n\nint f() { return undeclared; }";
  try {
    kctest::Harness h(src);
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    EXPECT_EQ(e.diagnostics()[0].loc.line, 3);
  }
}

TEST(KernelcPreprocessor, FunctionLikeMacroRejected) {
  EXPECT_THROW(preprocess("#define SQR(x) ((x)*(x))\n"), CompileError);
}

TEST(KernelcPreprocessor, UnsupportedDirectiveRejected) {
  try {
    preprocess("#include \"foo.h\"\n");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported preprocessor directive"),
              std::string::npos);
  }
}

TEST(KernelcPreprocessor, DefineWithoutNameRejected) {
  EXPECT_THROW(preprocess("#define\n"), CompileError);
  EXPECT_THROW(preprocess("#undef\n"), CompileError);
}

TEST(KernelcPreprocessor, IndentedDirectivesAccepted) {
  const std::string src = "   #define  K   5\nint f() { return K; }";
  EXPECT_EQ(callI(src, "f", {}), 5);
}

}  // namespace
