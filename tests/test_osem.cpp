// Tests for the OSEM application study: Siddon traversal properties, the
// synthetic scanner, reconstruction convergence, and the equivalence of the
// SkelCL / OpenCL / CUDA implementations with the sequential reference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "osem/osem.hpp"
#include "osem/siddon.hpp"
#include "sim/rng.hpp"

using namespace skelcl::osem;

namespace {

VolumeSpec smallVolume() {
  VolumeSpec v;
  v.nx = 16;
  v.ny = 16;
  v.nz = 16;
  v.voxel = 2.0f;
  return v;
}

// --- Siddon ------------------------------------------------------------------

TEST(Siddon, AxisAlignedRayCrossesWholeRow) {
  const VolumeSpec vol = smallVolume();
  // a ray through the middle of row iy=8, iz=8, along +x
  Event e{-100.0f, 1.0f, 1.0f, 100.0f, 1.0f, 1.0f};
  const auto path = siddonPath(vol, e);
  ASSERT_EQ(path.size(), 16u);
  float total = 0.0f;
  for (const auto& p : path) {
    EXPECT_NEAR(p.length, 2.0f, 1e-4f);  // voxel size, up to float rounding
    total += p.length;
  }
  EXPECT_NEAR(total, 32.0f, 1e-3f);  // nx * voxel
}

TEST(Siddon, MissingRayProducesEmptyPath) {
  const VolumeSpec vol = smallVolume();
  Event e{-100.0f, 100.0f, 0.0f, 100.0f, 100.0f, 0.0f};  // passes above the box
  EXPECT_TRUE(siddonPath(vol, e).empty());
}

TEST(Siddon, DegenerateZeroLengthEvent) {
  const VolumeSpec vol = smallVolume();
  Event e{1.0f, 1.0f, 1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_TRUE(siddonPath(vol, e).empty());
}

TEST(Siddon, PathLengthsSumToClippedSegment) {
  // Property: for random rays, sum of per-voxel lengths == clipped length.
  const VolumeSpec vol = smallVolume();
  skelcl::sim::Rng rng(123);
  int nonEmpty = 0;
  for (int k = 0; k < 500; ++k) {
    Event e;
    e.x1 = static_cast<float>(rng.uniform(-60, 60));
    e.y1 = static_cast<float>(rng.uniform(-60, 60));
    e.z1 = static_cast<float>(rng.uniform(-60, 60));
    e.x2 = static_cast<float>(rng.uniform(-60, 60));
    e.y2 = static_cast<float>(rng.uniform(-60, 60));
    e.z2 = static_cast<float>(rng.uniform(-60, 60));
    const auto path = siddonPath(vol, e);
    const float expected = clippedSegmentLength(vol, e);
    float total = 0.0f;
    for (const auto& p : path) total += p.length;
    EXPECT_NEAR(total, expected, 1e-3f + 1e-3f * expected) << "ray " << k;
    nonEmpty += path.empty() ? 0 : 1;
  }
  EXPECT_GT(nonEmpty, 100);  // the sampling box intersects the volume often
}

TEST(Siddon, AllVoxelIndicesInBounds) {
  const VolumeSpec vol = smallVolume();
  skelcl::sim::Rng rng(7);
  for (int k = 0; k < 500; ++k) {
    Event e;
    e.x1 = static_cast<float>(rng.uniform(-50, 50));
    e.y1 = static_cast<float>(rng.uniform(-50, 50));
    e.z1 = static_cast<float>(rng.uniform(-50, 50));
    e.x2 = static_cast<float>(rng.uniform(-50, 50));
    e.y2 = static_cast<float>(rng.uniform(-50, 50));
    e.z2 = static_cast<float>(rng.uniform(-50, 50));
    for (const auto& p : siddonPath(vol, e)) {
      EXPECT_LT(p.voxel, vol.voxels());
      EXPECT_GT(p.length, 0.0f);
    }
  }
}

TEST(Siddon, VoxelsAreVisitedAtMostOnce) {
  const VolumeSpec vol = smallVolume();
  skelcl::sim::Rng rng(99);
  for (int k = 0; k < 200; ++k) {
    Event e;
    e.x1 = static_cast<float>(rng.uniform(-50, 50));
    e.y1 = static_cast<float>(rng.uniform(-50, 50));
    e.z1 = static_cast<float>(rng.uniform(-50, 50));
    e.x2 = -e.x1;
    e.y2 = -e.y1;
    e.z2 = -e.z1;
    const auto path = siddonPath(vol, e);
    std::vector<std::size_t> seen;
    for (const auto& p : path) seen.push_back(p.voxel);
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  }
}

// --- phantom & scanner ----------------------------------------------------------

TEST(Phantom, ActivityStructure) {
  const VolumeSpec vol = smallVolume();
  Phantom phantom(vol);
  EXPECT_EQ(phantom.image().size(), vol.voxels());
  // center of the cylinder: background activity
  EXPECT_FLOAT_EQ(phantom.activityAt(0.0f, 0.0f, 0.0f), 1.0f);
  // far outside: nothing
  EXPECT_FLOAT_EQ(phantom.activityAt(1000.0f, 0.0f, 0.0f), 0.0f);
  // there are hot (8.0) and cold (0.0) voxels inside the cylinder
  int hot = 0;
  int background = 0;
  for (float a : phantom.image()) {
    if (a == 8.0f) ++hot;
    if (a == 1.0f) ++background;
  }
  EXPECT_GT(hot, 0);
  EXPECT_GT(background, 100);
}

TEST(Scanner, EventsEndOnDetectorCylinder) {
  const VolumeSpec vol = smallVolume();
  Phantom phantom(vol);
  Scanner scanner(60.0f, 80.0f);
  const auto events = scanner.generateEvents(phantom, 200, 5);
  ASSERT_EQ(events.size(), 200u);
  for (const Event& e : events) {
    EXPECT_NEAR(std::sqrt(e.x1 * e.x1 + e.y1 * e.y1), 60.0f, 0.01f);
    EXPECT_NEAR(std::sqrt(e.x2 * e.x2 + e.y2 * e.y2), 60.0f, 0.01f);
    EXPECT_LE(std::fabs(e.z1), 80.0f);
    EXPECT_LE(std::fabs(e.z2), 80.0f);
  }
}

TEST(Scanner, EventsAreDeterministicInSeed) {
  const VolumeSpec vol = smallVolume();
  Phantom phantom(vol);
  Scanner scanner(60.0f, 80.0f);
  const auto a = scanner.generateEvents(phantom, 50, 11);
  const auto b = scanner.generateEvents(phantom, 50, 11);
  const auto c = scanner.generateEvents(phantom, 50, 12);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Event)), 0);
  EXPECT_NE(std::memcmp(a.data(), c.data(), a.size() * sizeof(Event)), 0);
}

TEST(Scanner, MostEventsCrossTheVolume) {
  const VolumeSpec vol = smallVolume();
  Phantom phantom(vol);
  Scanner scanner(60.0f, 80.0f);
  const auto events = scanner.generateEvents(phantom, 300, 21);
  int crossing = 0;
  for (const Event& e : events) {
    if (!siddonPath(vol, e).empty()) ++crossing;
  }
  // emissions happen inside the volume, so nearly every LOR crosses it
  EXPECT_GT(crossing, 290);
}

// --- sequential reconstruction ------------------------------------------------

OsemConfig testConfig() {
  OsemConfig cfg;
  cfg.volume = smallVolume();
  cfg.eventsPerSubset = 1500;
  cfg.numSubsets = 4;
  cfg.iterations = 1;
  cfg.seed = 42;
  return cfg;
}

TEST(OsemSeq, ReconstructionConvergesTowardPhantom) {
  const OsemData data = OsemData::generate(testConfig());
  const auto result = runOsemSeq(data);

  // The reconstruction must correlate with the phantom far better than the
  // flat initial image does (correlation of a constant image is 0).
  const double corr = imageCorrelation(result.image, data.phantom.image());
  EXPECT_GT(corr, 0.55) << "reconstruction does not resemble the phantom";

  // More data must improve the reconstruction.
  OsemConfig big = testConfig();
  big.eventsPerSubset = 4000;
  const OsemData more = OsemData::generate(big);
  const auto better = runOsemSeq(more);
  EXPECT_GT(imageCorrelation(better.image, more.phantom.image()), corr);
}

TEST(OsemSeq, HotSphereRecoversHigherActivityThanBackground) {
  const OsemData data = OsemData::generate(testConfig());
  const auto result = runOsemSeq(data);
  const auto& truth = data.phantom.image();
  double hotMean = 0.0;
  double bgMean = 0.0;
  int hotCount = 0;
  int bgCount = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 8.0f) {
      hotMean += result.image[i];
      ++hotCount;
    } else if (truth[i] == 1.0f) {
      bgMean += result.image[i];
      ++bgCount;
    }
  }
  ASSERT_GT(hotCount, 0);
  ASSERT_GT(bgCount, 0);
  hotMean /= hotCount;
  bgMean /= bgCount;
  EXPECT_GT(hotMean, 2.0 * bgMean);
}

// --- implementation equivalence -------------------------------------------------

class OsemImpls : public ::testing::Test {
 protected:
  static const OsemData& data() {
    static const OsemData d = OsemData::generate(testConfig());
    return d;
  }
  static const std::vector<float>& reference() {
    static const std::vector<float> ref = runOsemSeq(data()).image;
    return ref;
  }
  static void expectMatchesReference(const std::vector<float>& image) {
    // Atomic scatter ordering and host-combine order perturb float rounding;
    // the images must still agree closely.
    EXPECT_LT(imageNrmse(image, reference()), 2e-3);
  }
};

TEST_F(OsemImpls, SkelClSingleMatchesSequential) {
  expectMatchesReference(runOsemSkelCLSingle(data()).image);
}

TEST_F(OsemImpls, SkelClMultiMatchesSequential) {
  for (int gpus : {1, 2, 4}) {
    expectMatchesReference(runOsemSkelCL(data(), gpus).image);
  }
}

TEST_F(OsemImpls, OclSingleMatchesSequential) {
  expectMatchesReference(runOsemOclSingle(data()).image);
}

TEST_F(OsemImpls, OclMultiMatchesSequential) {
  for (int gpus : {1, 2, 4}) {
    expectMatchesReference(runOsemOcl(data(), gpus).image);
  }
}

TEST_F(OsemImpls, CudaSingleMatchesSequential) {
  expectMatchesReference(runOsemCudaSingle(data()).image);
}

TEST_F(OsemImpls, CudaMultiMatchesSequential) {
  for (int gpus : {1, 2, 4}) {
    expectMatchesReference(runOsemCuda(data(), gpus).image);
  }
}

TEST_F(OsemImpls, AllImplementationsAgreePairwise) {
  const auto skelcl = runOsemSkelCL(data(), 4).image;
  const auto ocl = runOsemOcl(data(), 4).image;
  const auto cuda = runOsemCuda(data(), 4).image;
  EXPECT_LT(imageNrmse(skelcl, ocl), 2e-3);
  EXPECT_LT(imageNrmse(ocl, cuda), 2e-3);
}

TEST_F(OsemImpls, SimulatedTimeOrderingMatchesPaper) {
  // Section IV-C: CUDA fastest; SkelCL within ~5% of OpenCL.
  const auto skelcl = runOsemSkelCL(data(), 2);
  const auto ocl = runOsemOcl(data(), 2);
  const auto cuda = runOsemCuda(data(), 2);
  EXPECT_LT(cuda.secondsPerSubset, ocl.secondsPerSubset);
  EXPECT_LT(cuda.secondsPerSubset, skelcl.secondsPerSubset);
  EXPECT_LT(std::fabs(skelcl.secondsPerSubset - ocl.secondsPerSubset) /
                ocl.secondsPerSubset,
            0.15);
}

TEST_F(OsemImpls, MultiGpuIsFasterThanSingleGpuOnComputeBoundSizes) {
  // At tiny problem sizes the redistribution phase dominates and extra GPUs
  // do not pay off (a real effect the paper's full-size workload avoids);
  // use a compute-bound size for the speedup check.
  OsemConfig cfg = testConfig();
  cfg.eventsPerSubset = 8000;
  cfg.numSubsets = 2;
  const OsemData big = OsemData::generate(cfg);
  const auto one = runOsemSkelCL(big, 1);
  const auto four = runOsemSkelCL(big, 4);
  EXPECT_LT(four.secondsPerSubset, 0.7 * one.secondsPerSubset);
}

}  // namespace
