// Tests for the command-graph execution engine and its trace observability:
// device-local skeleton phases must *overlap* across GPUs in simulated time
// (the old per-device loops serialized them), dependencies must still order
// producer before consumer, and results must stay correct under weighted
// block distributions and copy distribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

std::vector<trace::Record> recordsNamed(const std::vector<trace::Record>& all,
                                        const std::string& needle) {
  std::vector<trace::Record> out;
  for (const trace::Record& r : all) {
    if (r.name.find(needle) != std::string::npos) out.push_back(r);
  }
  return out;
}

class TracedScan : public ::testing::Test {
 protected:
  void TearDown() override {
    trace::disable();
    trace::clear();
    if (initialized_) terminate();
  }

  /// Run one traced 4-GPU scan over `n` ints and return the trace records.
  std::vector<trace::Record> tracedScanRecords(std::size_t n) {
    init(sim::SystemConfig::teslaS1070(4));
    initialized_ = true;
    Scan<int> scan("int func(int a, int b) { return a + b; }");
    Vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i % 7);
    scan(v);  // warm-up: compile + upload
    finish();
    v.dataOnHostModified();
    resetSimClock();
    trace::clear();
    trace::enable();
    Vector<int> out = scan(v);
    finish();
    trace::disable();

    // correctness alongside the timing claims
    std::vector<int> expect(n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = static_cast<int>(i % 7);
    std::partial_sum(expect.begin(), expect.end(), expect.begin());
    for (std::size_t i : {std::size_t{0}, n / 3, n - 1}) {
      EXPECT_EQ(out[i], expect[i]) << "scan result wrong at " << i;
    }
    return trace::snapshot();
  }

  bool initialized_ = false;
};

TEST_F(TracedScan, Step1KernelsOverlapAcrossDevices) {
  const auto records = tracedScanRecords(std::size_t{1} << 18);
  const auto step1 = recordsNamed(records, "scan step1");
  ASSERT_EQ(step1.size(), 4u) << "expected one step-1 kernel per GPU";

  // The serialized executor ran each device's whole pipeline to completion
  // before touching the next device, so no two step-1 intervals could
  // overlap.  On the command graph, devices on different PCIe links upload
  // and compute concurrently: at least one pair of step-1 kernels on
  // *different* devices must share simulated time.
  int overlapping = 0;
  for (std::size_t a = 0; a < step1.size(); ++a) {
    for (std::size_t b = a + 1; b < step1.size(); ++b) {
      ASSERT_NE(step1[a].device, step1[b].device);
      const double start = std::max(step1[a].start, step1[b].start);
      const double end = std::min(step1[a].end, step1[b].end);
      if (start < end) ++overlapping;
    }
  }
  EXPECT_GE(overlapping, 1) << "step-1 kernels are serialized across devices";

  // Devices sharing no link with device 0 start step 1 strictly before
  // device 0's whole pipeline (step1 + sums + offsets + step2) finished.
  const auto step2 = recordsNamed(records, "scan step2");
  ASSERT_EQ(step2.size(), 4u);
  const auto dev0End =
      std::max_element(step2.begin(), step2.end(),
                       [](const auto& x, const auto& y) { return x.end < y.end; });
  for (const trace::Record& r : step1) {
    EXPECT_LT(r.start, dev0End->end);
  }
}

TEST_F(TracedScan, EveryCommandYieldsOneCompleteRecord) {
  const auto records = tracedScanRecords(std::size_t{1} << 14);
  // Per device: upload (re-upload after dataOnHostModified), step-1 kernel,
  // sums download, offsets upload, step-2 kernel; plus one host stage.  The
  // correctness check runs after trace::disable(), so its downloads are not
  // recorded.
  const auto uploads = recordsNamed(records, "upload dev");
  const auto hostStages = recordsNamed(records, "scan offsets host");
  EXPECT_EQ(uploads.size(), 4u);
  EXPECT_EQ(hostStages.size(), 1u);
  EXPECT_EQ(recordsNamed(records, "scan step1").size(), 4u);
  EXPECT_EQ(recordsNamed(records, "scan sums").size(), 4u);
  EXPECT_EQ(recordsNamed(records, "scan offsets dev").size(), 4u);
  for (const trace::Record& r : records) {
    EXPECT_LE(r.start, r.end) << r.name;
    EXPECT_FALSE(r.name.empty());
  }
}

TEST_F(TracedScan, DependenciesOrderProducerBeforeConsumer) {
  const auto records = tracedScanRecords(std::size_t{1} << 14);
  const auto step1 = recordsNamed(records, "scan step1");
  const auto sums = recordsNamed(records, "scan sums");
  const auto host = recordsNamed(records, "scan offsets host");
  const auto step2 = recordsNamed(records, "scan step2");
  ASSERT_EQ(host.size(), 1u);
  auto onDevice = [](const std::vector<trace::Record>& rs, int device) {
    for (const trace::Record& r : rs) {
      if (r.device == device) return r;
    }
    ADD_FAILURE() << "no record on device " << device;
    return trace::Record{};
  };
  for (int d = 0; d < 4; ++d) {
    // kernel -> sums download -> host offsets -> step-2 map
    EXPECT_GE(onDevice(sums, d).start, onDevice(step1, d).end - 1e-12);
    EXPECT_GE(host[0].start, onDevice(sums, d).end - 1e-12);
    EXPECT_GE(onDevice(step2, d).start, host[0].end - 1e-12);
  }
}

TEST_F(TracedScan, ChromeTraceExportIsLoadableJson) {
  tracedScanRecords(std::size_t{1} << 12);
  const std::string path = ::testing::TempDir() + "skelcl_trace_test.json";
  ASSERT_TRUE(trace::writeChromeTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("scan step1 dev0"), std::string::npos);
  EXPECT_EQ(content.find("NaN"), std::string::npos);
}

TEST(TraceDisabled, CollectsNothing) {
  trace::clear();
  ASSERT_FALSE(trace::enabled());
  init(sim::SystemConfig::teslaS1070(2));
  {
    Map<float(float)> twice("float func(float x) { return 2.0f * x; }");
    Vector<float> v(256);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<float>(i);
    Vector<float> out = twice(v);
    EXPECT_FLOAT_EQ(out[100], 200.0f);
  }
  terminate();
  EXPECT_TRUE(trace::snapshot().empty());
}

// --- correctness under weighted block distributions and copy ---------------

class WeightedSkeletons : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    const int gpus = GetParam();
    init(sim::SystemConfig::teslaS1070(gpus));
    // deliberately lopsided weights: device d gets weight d+1
    std::vector<double> weights(static_cast<std::size_t>(gpus));
    for (int d = 0; d < gpus; ++d) weights[static_cast<std::size_t>(d)] = d + 1.0;
    setPartitionWeights(weights);
  }
  void TearDown() override { terminate(); }
};

INSTANTIATE_TEST_SUITE_P(Gpus, WeightedSkeletons, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "gpus" + std::to_string(info.param);
                         });

TEST_P(WeightedSkeletons, ScanMatchesSequentialReference) {
  Scan<int> scan("int func(int a, int b) { return a + b; }");
  const std::size_t n = 1001;
  Vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i % 13) - 5;
  Vector<int> out = scan(v);
  std::vector<int> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = static_cast<int>(i % 13) - 5;
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], expect[i]) << i;
}

TEST_P(WeightedSkeletons, ReduceMatchesSequentialReference) {
  Reduce<int(int)> sum("int func(int a, int b) { return a + b; }");
  const std::size_t n = 1234;
  Vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i % 9) - 4;
  const int expected =
      std::accumulate(v.begin(), v.end(), 0);
  EXPECT_EQ(sum(v), expected);
}

TEST_P(WeightedSkeletons, ReduceUnderCopyDistribution) {
  Reduce<int(int)> sum("int func(int a, int b) { return a + b; }");
  const std::size_t n = 777;
  Vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i % 11) - 3;
  const int expected = std::accumulate(v.begin(), v.end(), 0);
  v.setDistribution(Distribution::copy());
  // every device holds the full vector; the result must not be multiplied
  EXPECT_EQ(sum(v), expected);
}

TEST_P(WeightedSkeletons, PlannedPartitionCacheTracksWeightChanges) {
  const int gpus = GetParam();
  detail::Session& session = currentSession();
  Vector<int> v(1000);
  v.setDistribution(Distribution::block());
  const std::size_t before = v.impl().partSizeOn(session, 0);
  // even split now: the cached plan must be invalidated by the weight change
  setPartitionWeights(std::vector<double>(static_cast<std::size_t>(gpus), 1.0));
  const std::size_t after = v.impl().partSizeOn(session, 0);
  EXPECT_EQ(after, 1000u / static_cast<std::size_t>(gpus));
  if (gpus > 1) {
    EXPECT_LT(before, after);  // device 0 had the smallest weight
  }
  std::size_t total = 0;
  for (const auto& p : v.impl().plannedPartition(session)) total += p.size;
  EXPECT_EQ(total, 1000u);
}

}  // namespace
