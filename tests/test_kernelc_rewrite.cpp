// Unit tests for the tier-2 rewrite pass (kernelc/rewrite.hpp) on
// hand-written Insn IR: each rule is checked against the *exact* expected
// output stream — opcodes, operands and weights — and then executed, the
// naive input on the reference interpreter and the rewritten output through
// the packed pipeline, requiring identical results and identical
// retired-instruction counts.  The weight rules under test (docs/VM.md):
// hoisted/preheader/tracking code retires 0, each in-loop replacement
// carries its window's summed weight, so the static weight sum — and the
// dynamic retired count on every control-flow path, including zero-trip
// loops — is exactly what the unrewritten program reports.
//
// Inputs use only naive opcodes: the reference interpreter rejects
// superinstructions, and the compiler never feeds the rewrite pass anything
// else (it runs before peephole).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernelc/disasm.hpp"
#include "kernelc/encode.hpp"
#include "kernelc/rewrite.hpp"
#include "kernelc/types.hpp"
#include "kernelc/vm.hpp"

using namespace skelcl::kc;

namespace {

Insn ins(Op op, std::int32_t a = 0, std::int32_t b = 0, std::int64_t imm = 0,
         int weight = 1) {
  Insn insn;
  insn.op = op;
  insn.a = a;
  insn.b = b;
  insn.imm = imm;
  insn.weight = static_cast<std::uint8_t>(weight);
  return insn;
}

Insn insF(Op op, double fimm, int weight = 1) {
  Insn insn;
  insn.op = op;
  insn.fimm = fimm;
  insn.weight = static_cast<std::uint8_t>(weight);
  return insn;
}

void expectCode(const FunctionCode& fn, const std::vector<Insn>& want) {
  ASSERT_EQ(fn.code.size(), want.size()) << disassemble(fn);
  for (std::size_t i = 0; i < want.size(); ++i) {
    const Insn& g = fn.code[i];
    const Insn& w = want[i];
    EXPECT_EQ(opName(g.op), opName(w.op)) << "at " << i << "\n" << disassemble(fn);
    EXPECT_EQ(g.a, w.a) << "operand a at " << i << "\n" << disassemble(fn);
    EXPECT_EQ(g.b, w.b) << "operand b at " << i << "\n" << disassemble(fn);
    EXPECT_EQ(g.imm, w.imm) << "imm at " << i << "\n" << disassemble(fn);
    EXPECT_EQ(g.fimm, w.fimm) << "fimm at " << i << "\n" << disassemble(fn);
    EXPECT_EQ(int{g.weight}, int{w.weight}) << "weight at " << i << "\n"
                                            << disassemble(fn);
  }
}

int staticWeightSum(const FunctionCode& fn) {
  int sum = 0;
  for (const Insn& insn : fn.code) sum += insn.weight;
  return sum;
}

/// Wrap one function in a runnable program.  `optimize` runs the encoder so
/// the packed pipeline executes it — required once the rewrite pass has
/// inserted superinstructions (IncSlotI, PtrAddImm), which the reference
/// interpreter rejects by design.
std::unique_ptr<CompiledProgram> makeProgram(FunctionCode fn, bool optimize) {
  auto program = std::make_unique<CompiledProgram>();
  program->functions.push_back(std::move(fn));
  if (optimize) {
    finalizeFunctions(program->functions);
    program->optimized = true;
  }
  return program;
}

/// `int f(int n) { int acc = 0; for (int i = 0; i < n; i += 1) acc += i * 5;
/// return acc; }` — slots: 0 = n, 1 = i, 2 = acc.  The canonical
/// strength-reduction shape with a bare-assignment increment.
FunctionCode sumTimesFive() {
  FunctionCode fn;
  fn.name = "f";
  fn.returnType = types::Int;
  fn.paramTypes = {types::Int};
  fn.numSlots = 3;
  fn.code = {
      ins(Op::PushI, 0, 0, 0),   //  0: acc = 0
      ins(Op::StoreSlot, 2),     //  1
      ins(Op::PushI, 0, 0, 0),   //  2: i = 0
      ins(Op::StoreSlot, 1),     //  3
      ins(Op::LoadSlot, 1),      //  4: head: exit when i >= n
      ins(Op::LoadSlot, 0),      //  5
      ins(Op::GeI),              //  6
      ins(Op::Jnz, 19),          //  7
      ins(Op::LoadSlot, 2),      //  8: acc = acc + i * 5
      ins(Op::LoadSlot, 1),      //  9
      ins(Op::PushI, 0, 0, 5),   // 10
      ins(Op::MulI),             // 11
      ins(Op::AddI),             // 12
      ins(Op::StoreSlot, 2),     // 13
      ins(Op::LoadSlot, 1),      // 14: i = i + 1
      ins(Op::PushI, 0, 0, 1),   // 15
      ins(Op::AddI),             // 16
      ins(Op::StoreSlot, 1),     // 17
      ins(Op::Jmp, 4),           // 18
      ins(Op::LoadSlot, 2),      // 19
      ins(Op::Ret),              // 20
  };
  return fn;
}

/// `float g(float* p, int i) { return p[i + 2]; }` — slots: 0 = p, 1 = i.
/// The pointer-bias shape.
FunctionCode loadBiased() {
  FunctionCode fn;
  fn.name = "g";
  fn.returnType = types::Float;
  fn.paramTypes = {types::Int, types::Int};  // Ptr slots marshal raw
  fn.numSlots = 2;
  fn.code = {
      ins(Op::LoadSlot, 0),     // 0: p
      ins(Op::LoadSlot, 1),     // 1: i
      ins(Op::PushI, 0, 0, 2),  // 2
      ins(Op::AddI),            // 3
      ins(Op::PtrAdd, 4),       // 4: float elements
      ins(Op::LoadF32),         // 5
      ins(Op::Ret),             // 6
  };
  return fn;
}

/// `float h(float x, int n) { float acc = 0; for (int i = 0; i < n; i += 1)
/// acc += x * x; return acc; }` — slots: 0 = x, 1 = n, 2 = i, 3 = acc.
/// The loop-invariant window is `LoadSlot x; LoadSlot x; MulF32`.
FunctionCode accumulateSquare() {
  FunctionCode fn;
  fn.name = "h";
  fn.returnType = types::Float;
  fn.paramTypes = {types::Float, types::Int};
  fn.numSlots = 4;
  fn.code = {
      insF(Op::PushF, 0.0),     //  0: acc = 0
      ins(Op::StoreSlot, 3),    //  1
      ins(Op::PushI, 0, 0, 0),  //  2: i = 0
      ins(Op::StoreSlot, 2),    //  3
      ins(Op::LoadSlot, 2),     //  4: head: exit when i >= n
      ins(Op::LoadSlot, 1),     //  5
      ins(Op::GeI),             //  6
      ins(Op::Jnz, 19),         //  7
      ins(Op::LoadSlot, 3),     //  8: acc = acc + x * x
      ins(Op::LoadSlot, 0),     //  9
      ins(Op::LoadSlot, 0),     // 10
      ins(Op::MulF32),          // 11
      ins(Op::AddF32),          // 12
      ins(Op::StoreSlot, 3),    // 13
      ins(Op::LoadSlot, 2),     // 14: i = i + 1
      ins(Op::PushI, 0, 0, 1),  // 15
      ins(Op::AddI),            // 16
      ins(Op::StoreSlot, 2),    // 17
      ins(Op::Jmp, 4),          // 18
      ins(Op::LoadSlot, 3),     // 19
      ins(Op::Ret),             // 20
  };
  return fn;
}

// --- R2: strength reduction -------------------------------------------------

TEST(KernelcRewrite, StrengthReductionExactStream) {
  FunctionCode fn = sumTimesFive();
  const int weightBefore = staticWeightSum(fn);
  EXPECT_EQ(rewriteOptimize(fn), 1);
  EXPECT_EQ(fn.numSlots, 4);  // tracked slot appended
  EXPECT_EQ(staticWeightSum(fn), weightBefore);

  // Preheader (weight 0) seeds slot 3 = i * 5 before the loop head; every
  // in-loop branch to the old head lands *after* it.  The multiply window
  // becomes LoadSlot 3 carrying the three retired instructions' weight, and
  // the tracking increment rides weight-free behind the induction update.
  expectCode(fn, {
      ins(Op::PushI, 0, 0, 0),         //  0
      ins(Op::StoreSlot, 2),           //  1
      ins(Op::PushI, 0, 0, 0),         //  2
      ins(Op::StoreSlot, 1),           //  3
      ins(Op::LoadSlot, 1, 0, 0, 0),   //  4: preheader: slot3 = i * 5
      ins(Op::PushI, 0, 0, 5, 0),      //  5
      ins(Op::MulI, 0, 0, 0, 0),       //  6
      ins(Op::StoreSlot, 3, 0, 0, 0),  //  7
      ins(Op::LoadSlot, 1),            //  8: head
      ins(Op::LoadSlot, 0),            //  9
      ins(Op::GeI),                    // 10
      ins(Op::Jnz, 22),                // 11
      ins(Op::LoadSlot, 2),            // 12
      ins(Op::LoadSlot, 3, 0, 0, 3),   // 13: was LoadSlot i; PushI 5; MulI
      ins(Op::AddI),                   // 14
      ins(Op::StoreSlot, 2),           // 15
      ins(Op::LoadSlot, 1),            // 16
      ins(Op::PushI, 0, 0, 1),         // 17
      ins(Op::AddI),                   // 18
      ins(Op::StoreSlot, 1),           // 19
      ins(Op::IncSlotI, 3, 0, 5, 0),   // 20: slot3 += 1 * 5
      ins(Op::Jmp, 8),                 // 21: in-loop edge skips the preheader
      ins(Op::LoadSlot, 2),            // 22
      ins(Op::Ret),                    // 23
  });
}

TEST(KernelcRewrite, StrengthReductionExecutesIdentically) {
  FunctionCode naive = sumTimesFive();
  FunctionCode rewritten = sumTimesFive();
  ASSERT_EQ(rewriteOptimize(rewritten), 1);

  const auto ref = makeProgram(naive, /*optimize=*/false);
  const auto opt = makeProgram(std::move(rewritten), /*optimize=*/true);
  Vm vmRef(*ref, {});
  Vm vmOpt(*opt, {});
  const std::vector<Slot> args{Slot::fromInt(4)};
  EXPECT_EQ(vmRef.callFunction(0, args).i, 30);  // 0 + 5 + 10 + 15
  EXPECT_EQ(vmOpt.callFunction(0, args).i, 30);
  // 4 prologue + 4 iterations x (4 cond + 6 body + 4 inc + 1 jmp)
  // + 4 final cond + 2 exit = 70 on both pipelines.
  EXPECT_EQ(vmRef.instructionsExecuted(), 70u);
  EXPECT_EQ(vmOpt.instructionsExecuted(), 70u);
}

TEST(KernelcRewrite, StrengthReductionZeroTripLoopCountsMatch) {
  // n = 0: the loop body never runs, but the preheader does.  Its weight is
  // 0, so the rewritten program must retire exactly what the naive one does.
  FunctionCode naive = sumTimesFive();
  FunctionCode rewritten = sumTimesFive();
  ASSERT_EQ(rewriteOptimize(rewritten), 1);

  const auto ref = makeProgram(naive, false);
  const auto opt = makeProgram(std::move(rewritten), true);
  Vm vmRef(*ref, {});
  Vm vmOpt(*opt, {});
  const std::vector<Slot> args{Slot::fromInt(0)};
  EXPECT_EQ(vmRef.callFunction(0, args).i, 0);
  EXPECT_EQ(vmOpt.callFunction(0, args).i, 0);
  EXPECT_EQ(vmRef.instructionsExecuted(), 10u);
  EXPECT_EQ(vmOpt.instructionsExecuted(), 10u);
}

TEST(KernelcRewrite, StrengthReductionNeedsConstantFactor) {
  // i * s with s a slot, not an immediate: no rule applies, the stream must
  // come back untouched.
  FunctionCode fn;
  fn.name = "m";
  fn.returnType = types::Int;
  fn.paramTypes = {types::Int, types::Int};  // 0 = n, 1 = s
  fn.numSlots = 4;                           // 2 = i, 3 = acc
  fn.code = {
      ins(Op::PushI, 0, 0, 0),  ins(Op::StoreSlot, 3),
      ins(Op::PushI, 0, 0, 0),  ins(Op::StoreSlot, 2),
      ins(Op::LoadSlot, 2),     ins(Op::LoadSlot, 0),
      ins(Op::GeI),             ins(Op::Jnz, 19),
      ins(Op::LoadSlot, 3),     ins(Op::LoadSlot, 2),
      ins(Op::LoadSlot, 1),     ins(Op::MulI),
      ins(Op::AddI),            ins(Op::StoreSlot, 3),
      ins(Op::LoadSlot, 2),     ins(Op::PushI, 0, 0, 1),
      ins(Op::AddI),            ins(Op::StoreSlot, 2),
      ins(Op::Jmp, 4),          ins(Op::LoadSlot, 3),
      ins(Op::Ret),
  };
  const std::vector<Insn> before = fn.code;
  EXPECT_EQ(rewriteOptimize(fn), 0);
  EXPECT_EQ(fn.numSlots, 4);
  expectCode(fn, before);
}

// --- R3: pointer-bias fusion ------------------------------------------------

TEST(KernelcRewrite, PointerBiasExactStream) {
  FunctionCode fn = loadBiased();
  const int weightBefore = staticWeightSum(fn);
  EXPECT_EQ(rewriteOptimize(fn), 1);
  EXPECT_EQ(fn.numSlots, 3);  // biased-pointer slot appended
  EXPECT_EQ(staticWeightSum(fn), weightBefore);

  // Entry preheader precomputes p' = p + 2 elements (weight 0); the window
  // keeps its index load and access but drops PushI/AddI, with LoadSlot p'
  // carrying their weight plus the original pointer load's.
  expectCode(fn, {
      ins(Op::LoadSlot, 0, 0, 0, 0),    // 0: preheader: slot2 = p + 2*4B
      ins(Op::PtrAddImm, 4, 0, 2, 0),   // 1
      ins(Op::StoreSlot, 2, 0, 0, 0),   // 2
      ins(Op::LoadSlot, 2, 0, 0, 3),    // 3: was LoadSlot p (+ PushI, AddI)
      ins(Op::LoadSlot, 1),             // 4
      ins(Op::PtrAdd, 4),               // 5
      ins(Op::LoadF32),                 // 6
      ins(Op::Ret),                     // 7
  });
}

TEST(KernelcRewrite, PointerBiasExecutesIdentically) {
  FunctionCode naive = loadBiased();
  FunctionCode rewritten = loadBiased();
  ASSERT_EQ(rewriteOptimize(rewritten), 1);

  std::vector<float> buf = {10.f, 11.f, 12.f, 13.f, 14.f, 15.f};
  const std::vector<MemRegion> regions{
      MemRegion{reinterpret_cast<std::byte*>(buf.data()), buf.size() * sizeof(float)}};
  Ptr p;
  p.region = 1;
  p.offset = 0;
  const std::vector<Slot> args{Slot::fromPtr(p), Slot::fromInt(1)};

  const auto ref = makeProgram(naive, false);
  const auto opt = makeProgram(std::move(rewritten), true);
  Vm vmRef(*ref, regions);
  Vm vmOpt(*opt, regions);
  EXPECT_EQ(vmRef.callFunction(0, args).f, 13.0);  // p[1 + 2]
  EXPECT_EQ(vmOpt.callFunction(0, args).f, 13.0);
  EXPECT_EQ(vmRef.instructionsExecuted(), 7u);
  EXPECT_EQ(vmOpt.instructionsExecuted(), 7u);
}

// --- R1: loop-invariant hoisting --------------------------------------------

TEST(KernelcRewrite, HoistExactStream) {
  FunctionCode fn = accumulateSquare();
  const int weightBefore = staticWeightSum(fn);
  EXPECT_EQ(rewriteOptimize(fn), 1);
  EXPECT_EQ(fn.numSlots, 5);  // hoisted-value slot appended
  EXPECT_EQ(staticWeightSum(fn), weightBefore);

  expectCode(fn, {
      insF(Op::PushF, 0.0),            //  0
      ins(Op::StoreSlot, 3),           //  1
      ins(Op::PushI, 0, 0, 0),         //  2
      ins(Op::StoreSlot, 2),           //  3
      ins(Op::LoadSlot, 0, 0, 0, 0),   //  4: preheader: slot4 = x * x
      ins(Op::LoadSlot, 0, 0, 0, 0),   //  5
      ins(Op::MulF32, 0, 0, 0, 0),     //  6
      ins(Op::StoreSlot, 4, 0, 0, 0),  //  7
      ins(Op::LoadSlot, 2),            //  8: head
      ins(Op::LoadSlot, 1),            //  9
      ins(Op::GeI),                    // 10
      ins(Op::Jnz, 21),                // 11
      ins(Op::LoadSlot, 3),            // 12
      ins(Op::LoadSlot, 4, 0, 0, 3),   // 13: was LoadSlot x; LoadSlot x; MulF32
      ins(Op::AddF32),                 // 14
      ins(Op::StoreSlot, 3),           // 15
      ins(Op::LoadSlot, 2),            // 16
      ins(Op::PushI, 0, 0, 1),         // 17
      ins(Op::AddI),                   // 18
      ins(Op::StoreSlot, 2),           // 19
      ins(Op::Jmp, 8),                 // 20
      ins(Op::LoadSlot, 3),            // 21
      ins(Op::Ret),                    // 22
  });
}

TEST(KernelcRewrite, HoistExecutesIdentically) {
  FunctionCode naive = accumulateSquare();
  FunctionCode rewritten = accumulateSquare();
  ASSERT_EQ(rewriteOptimize(rewritten), 1);

  const auto ref = makeProgram(naive, false);
  const auto opt = makeProgram(std::move(rewritten), true);
  Vm vmRef(*ref, {});
  Vm vmOpt(*opt, {});
  const std::vector<Slot> args{Slot::fromFloat(2.0), Slot::fromInt(3)};
  EXPECT_EQ(vmRef.callFunction(0, args).f, 12.0);  // 3 * (2 * 2)
  EXPECT_EQ(vmOpt.callFunction(0, args).f, 12.0);
  // 4 prologue + 3 x (4 cond + 6 body + 4 inc + 1 jmp) + 4 + 2 = 55.
  EXPECT_EQ(vmRef.instructionsExecuted(), 55u);
  EXPECT_EQ(vmOpt.instructionsExecuted(), 55u);
}

TEST(KernelcRewrite, HoistedCodeAnnotatedInDisassembly) {
  FunctionCode fn = accumulateSquare();
  ASSERT_EQ(rewriteOptimize(fn), 1);
  const std::string text = disassemble(fn);
  EXPECT_NE(text.find(";hoisted"), std::string::npos);
  EXPECT_NE(text.find(";w=3"), std::string::npos);
}

}  // namespace
