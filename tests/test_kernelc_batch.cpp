// Tests for the work-group-batched interpreter (Vm::runKernelBatch,
// docs/VM.md): for every kernel shape — straight-line, uniformly looping,
// heavily divergent, builtin-calling — batched execution must produce
// bit-identical buffer contents and identical retired-instruction counts to
// the same program run one work-item at a time, for any lane count up to
// kBatchLanes.  Non-batchable kernels (frame memory, calls, barriers) must
// fall back to per-item execution transparently, and faults must still
// surface as VmError.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "kernelc/diagnostics.hpp"
#include "kernelc/program.hpp"
#include "kernelc/vm.hpp"

using namespace skelcl::kc;

namespace {

struct RunOutcome {
  std::vector<float> data;
  std::uint64_t instructions = 0;
};

/// Run `kernel` over `n` items on a fresh VM; buffer argument first, then
/// `extraArgs`.  `batch` selects runKernelBatch in kBatchLanes chunks.
RunOutcome run(const CompiledProgram& program, const std::string& kernel,
               std::vector<float> data, std::int64_t n, std::vector<Slot> extraArgs,
               bool batch) {
  RunOutcome out;
  out.data = std::move(data);
  std::vector<MemRegion> regions{MemRegion{
      reinterpret_cast<std::byte*>(out.data.data()), out.data.size() * sizeof(float)}};
  Ptr p;
  p.region = 1;
  p.offset = 0;
  std::vector<Slot> args{Slot::fromPtr(p)};
  args.insert(args.end(), extraArgs.begin(), extraArgs.end());

  Vm vm(program, regions);
  const int k = program.findKernel(kernel);
  EXPECT_GE(k, 0);
  if (batch) {
    for (std::int64_t gid = 0; gid < n;) {
      const std::int64_t lanes = std::min<std::int64_t>(n - gid, Vm::kBatchLanes);
      vm.runKernelBatch(k, args, gid, lanes, n);
      gid += lanes;
    }
  } else {
    for (std::int64_t gid = 0; gid < n; ++gid) vm.runKernel(k, args, gid, n);
  }
  out.instructions = vm.instructionsExecuted();
  return out;
}

/// Compile at tier 2 and require the batched run to match the sequential run
/// bit-for-bit, with equal retired-instruction counts.
void expectBatchMatchesSequential(const std::string& source, const std::string& kernel,
                                  std::vector<float> data, std::int64_t n,
                                  std::vector<Slot> extraArgs = {}) {
  const auto program = compileProgram(source, CompileOptions{2});
  const RunOutcome seq = run(*program, kernel, data, n, extraArgs, /*batch=*/false);
  const RunOutcome bat = run(*program, kernel, std::move(data), n, extraArgs,
                             /*batch=*/true);
  EXPECT_EQ(bat.instructions, seq.instructions)
      << "retired-instruction counts diverged — simulated kernel time would change";
  ASSERT_EQ(bat.data.size(), seq.data.size());
  EXPECT_EQ(0, std::memcmp(bat.data.data(), seq.data.data(),
                           seq.data.size() * sizeof(float)))
      << "batched buffer contents diverged from sequential execution";
}

constexpr const char* kEscapeSrc = R"(
  __kernel void escape(__global float* out, int n) {
    int gid = get_global_id(0);
    float zr = 0.0f;
    float c = (float)(gid % 13) * 0.33f - 2.0f;
    int it = 0;
    while (it < n) {
      zr = zr * zr + c;
      if (zr > 4.0f) break;
      ++it;
    }
    out[gid] = (float)it + zr * 0.001f;
  }
)";

TEST(KernelcBatch, DivergentEscapeLoop) {
  // Neighboring lanes escape after different iteration counts, exercising
  // group splits on both the break and the back-edge.
  expectBatchMatchesSequential(kEscapeSrc, "escape", std::vector<float>(300, 0.0f), 300,
                               {Slot::fromInt(64)});
}

TEST(KernelcBatch, CollatzHeavyDivergence) {
  // Trip counts vary wildly per lane (collatz lengths), so groups fragment
  // down to single lanes and must still retire exact per-item counts.
  const std::string src = R"(
    __kernel void collatz(__global float* out) {
      int gid = get_global_id(0);
      int n = gid + 1;
      int steps = 0;
      while (n != 1) {
        if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
        steps++;
      }
      out[gid] = (float)steps;
    }
  )";
  expectBatchMatchesSequential(src, "collatz", std::vector<float>(256, 0.0f), 256);
}

TEST(KernelcBatch, EdgeLaneCounts) {
  // 1 lane, a few lanes, one short of a full group, a full group, and a
  // count that needs a full group plus a remainder chunk.
  for (const std::int64_t n : {std::int64_t{1}, std::int64_t{7}, std::int64_t{255},
                               std::int64_t{256}, std::int64_t{300}}) {
    SCOPED_TRACE(n);
    expectBatchMatchesSequential(kEscapeSrc, "escape",
                                 std::vector<float>(static_cast<std::size_t>(n), 0.0f),
                                 n, {Slot::fromInt(32)});
  }
}

TEST(KernelcBatch, GatherLoopWithBuiltins) {
  // Uniform inner loop gathering from the upper half of the buffer (disjoint
  // from the written lower half — no cross-item races) plus sqrt/fmax
  // builtin calls: the group never splits, staying on the dense all-lanes
  // path end to end.
  const std::string src = R"(
    __kernel void gather(__global float* data, int n) {
      int gid = get_global_id(0);
      float acc = 0.0f;
      for (int i = 0; i < 8; ++i) {
        acc = acc + data[n + (gid + i) % n];
      }
      data[gid] = sqrt(fmax(acc, 0.25f)) + (float)get_global_id(0) * 0.125f;
    }
  )";
  std::vector<float> data(384);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.5f * static_cast<float>(i % 37) - 4.0f;
  }
  expectBatchMatchesSequential(src, "gather", data, 192, {Slot::fromInt(192)});
}

TEST(KernelcBatch, SecondDimensionGlobalIdIsZero) {
  const std::string src = R"(
    __kernel void dims(__global float* out) {
      int gid = get_global_id(0);
      out[gid] = (float)gid + (float)get_global_id(1) * 1000.0f;
    }
  )";
  const auto program = compileProgram(src, CompileOptions{2});
  const RunOutcome bat =
      run(*program, "dims", std::vector<float>(64, -1.0f), 64, {}, true);
  for (std::size_t i = 0; i < bat.data.size(); ++i) {
    EXPECT_EQ(bat.data[i], static_cast<float>(i));
  }
}

TEST(KernelcBatch, NonBatchableKernelFallsBack) {
  // Frame memory (a local array) disqualifies a kernel from batched
  // execution; runKernelBatch must transparently run it per item instead.
  const std::string src = R"(
    __kernel void histo(__global float* out, int n) {
      int gid = get_global_id(0);
      float bins[4];
      for (int b = 0; b < 4; ++b) bins[b] = 0.0f;
      for (int i = 0; i < n; ++i) {
        int b = (gid + i) % 4;
        bins[b] = bins[b] + (float)i;
      }
      out[gid] = bins[0] + bins[1] * 2.0f + bins[2] * 3.0f + bins[3] * 4.0f;
    }
  )";
  const auto program = compileProgram(src, CompileOptions{2});
  const int k = program->findKernel("histo");
  ASSERT_GE(k, 0);
  EXPECT_FALSE(program->functions[static_cast<std::size_t>(k)].batchable);
  expectBatchMatchesSequential(src, "histo", std::vector<float>(40, 0.0f), 40,
                               {Slot::fromInt(9)});
}

TEST(KernelcBatch, BatchableFlagComputedForStraightLineKernels) {
  const auto program = compileProgram(kEscapeSrc, CompileOptions{2});
  const int k = program->findKernel("escape");
  ASSERT_GE(k, 0);
  EXPECT_TRUE(program->functions[static_cast<std::size_t>(k)].batchable);
}

TEST(KernelcBatch, OutOfBoundsFaultsAsVmError) {
  // Lane 63 reads out[2 * gid] past the 64-element buffer; the batched
  // bounds check must fault exactly like the sequential interpreters do.
  const std::string src = R"(
    __kernel void oob(__global float* out) {
      int gid = get_global_id(0);
      out[gid] = out[2 * gid];
    }
  )";
  const auto program = compileProgram(src, CompileOptions{2});
  ASSERT_TRUE(
      program->functions[static_cast<std::size_t>(program->findKernel("oob"))].batchable);
  std::vector<float> buf(64, 1.0f);
  std::vector<MemRegion> regions{
      MemRegion{reinterpret_cast<std::byte*>(buf.data()), buf.size() * sizeof(float)}};
  Ptr p;
  p.region = 1;
  p.offset = 0;
  const std::vector<Slot> args{Slot::fromPtr(p)};
  Vm vm(*program, regions);
  EXPECT_THROW(vm.runKernelBatch(0, args, 0, 64, 64), VmError);
}

TEST(KernelcBatch, DivisionByZeroFaultsAsVmError) {
  const std::string src = R"(
    __kernel void divz(__global float* out, int d) {
      int gid = get_global_id(0);
      out[gid] = (float)(100 / (gid - d));
    }
  )";
  const auto program = compileProgram(src, CompileOptions{2});
  std::vector<float> buf(16, 0.0f);
  std::vector<MemRegion> regions{
      MemRegion{reinterpret_cast<std::byte*>(buf.data()), buf.size() * sizeof(float)}};
  Ptr p;
  p.region = 1;
  p.offset = 0;
  const std::vector<Slot> args{Slot::fromPtr(p), Slot::fromInt(5)};
  Vm vm(*program, regions);
  EXPECT_THROW(vm.runKernelBatch(0, args, 0, 16, 16), VmError);
}

TEST(KernelcBatch, CountsAccumulateAcrossChunks) {
  // Two half-full chunks on one VM retire exactly what one sequential pass
  // does: the counter is shared and exact, not per-call approximate.
  const auto program = compileProgram(kEscapeSrc, CompileOptions{2});
  const RunOutcome seq =
      run(*program, "escape", std::vector<float>(128, 0.0f), 128, {Slot::fromInt(48)},
          false);
  std::vector<float> buf(128, 0.0f);
  std::vector<MemRegion> regions{
      MemRegion{reinterpret_cast<std::byte*>(buf.data()), buf.size() * sizeof(float)}};
  Ptr p;
  p.region = 1;
  p.offset = 0;
  const std::vector<Slot> args{Slot::fromPtr(p), Slot::fromInt(48)};
  Vm vm(*program, regions);
  const int k = program->findKernel("escape");
  vm.runKernelBatch(k, args, 0, 64, 128);
  vm.runKernelBatch(k, args, 64, 64, 128);
  EXPECT_EQ(vm.instructionsExecuted(), seq.instructions);
  EXPECT_EQ(0, std::memcmp(buf.data(), seq.data.data(), buf.size() * sizeof(float)));
}

}  // namespace
