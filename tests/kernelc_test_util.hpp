// Shared helpers for the kernelc test suites: compile a source string, bind
// byte buffers as pointer regions, and run kernels / functions.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kernelc/program.hpp"
#include "kernelc/vm.hpp"

namespace kctest {

using skelcl::kc::CompiledProgram;
using skelcl::kc::MemRegion;
using skelcl::kc::Ptr;
using skelcl::kc::Slot;
using skelcl::kc::Vm;

/// A VM harness owning typed buffers.
class Harness {
 public:
  explicit Harness(const std::string& source) : program_(skelcl::kc::compileProgram(source)) {}

  /// Register a float buffer; returns the argument Slot pointing at it.
  template <typename T>
  Slot addBuffer(std::vector<T>& data) {
    regions_.push_back(
        MemRegion{reinterpret_cast<std::byte*>(data.data()), data.size() * sizeof(T)});
    Ptr p;
    p.region = static_cast<std::int32_t>(regions_.size());  // region 0 is null
    p.offset = 0;
    return Slot::fromPtr(p);
  }

  Slot nullPtr() const { return Slot::fromPtr(Ptr{}); }

  /// Run `kernelName` over `globalSize` work items with the given args.
  void run(const std::string& kernelName, std::span<const Slot> args,
           std::int64_t globalSize) {
    Vm vm(*program_, regions_);
    const int k = program_->findKernel(kernelName);
    if (k < 0) throw skelcl::Error("no kernel named " + kernelName);
    for (std::int64_t gid = 0; gid < globalSize; ++gid) {
      vm.runKernel(k, args, gid, globalSize);
    }
    instructions_ += vm.instructionsExecuted();
  }

  /// Call a plain function once and return its raw result slot.
  Slot call(const std::string& fnName, std::span<const Slot> args) {
    Vm vm(*program_, regions_);
    const int f = program_->findFunction(fnName);
    if (f < 0) throw skelcl::Error("no function named " + fnName);
    Slot result = vm.callFunction(f, args);
    instructions_ += vm.instructionsExecuted();
    return result;
  }

  const CompiledProgram& program() const { return *program_; }
  std::uint64_t instructions() const { return instructions_; }

 private:
  std::shared_ptr<const CompiledProgram> program_;
  std::vector<MemRegion> regions_;
  std::uint64_t instructions_ = 0;
};

/// Compile-and-call helper for scalar functions: `callF("...source...",
/// "fnName", {args})` returning a double.
inline double callF(const std::string& source, const std::string& fn,
                    std::vector<Slot> args) {
  Harness h(source);
  return h.call(fn, args).f;
}

inline std::int64_t callI(const std::string& source, const std::string& fn,
                          std::vector<Slot> args) {
  Harness h(source);
  return h.call(fn, args).i;
}

}  // namespace kctest
