// Tests for the simulated-hardware substrate: timelines, system configs,
// transfer/kernel/host cost accounting, link contention.
#include <gtest/gtest.h>

#include "base/error.hpp"
#include "sim/device_spec.hpp"
#include "sim/rng.hpp"
#include "sim/system.hpp"
#include "sim/thread_pool.hpp"
#include "sim/timeline.hpp"

using namespace skelcl;
using namespace skelcl::sim;

namespace {

TEST(Timeline, ReservationsSerialize) {
  Timeline t;
  const auto a = t.reserve(0.0, 1.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(a.end, 1.0);
  const auto b = t.reserve(0.0, 0.5);  // wants to start at 0 but resource is busy
  EXPECT_DOUBLE_EQ(b.start, 1.0);
  EXPECT_DOUBLE_EQ(b.end, 1.5);
}

TEST(Timeline, EarliestRespected) {
  Timeline t;
  const auto a = t.reserve(5.0, 1.0);
  EXPECT_DOUBLE_EQ(a.start, 5.0);
  EXPECT_DOUBLE_EQ(t.availableAt(), 6.0);
}

TEST(Timeline, ResetZeroes) {
  Timeline t;
  t.reserve(0.0, 3.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.availableAt(), 0.0);
}

TEST(Timeline, NegativeDurationRejected) {
  Timeline t;
  EXPECT_THROW(t.reserve(0.0, -1.0), UsageError);
}

TEST(SystemConfig, TeslaS1070Shapes) {
  for (int n : {1, 2, 4}) {
    const SystemConfig cfg = SystemConfig::teslaS1070(n);
    EXPECT_EQ(static_cast<int>(cfg.devices.size()), n);
    for (const auto& d : cfg.devices) {
      EXPECT_EQ(d.type, DeviceType::GPU);
      EXPECT_EQ(d.cores, 240);
      EXPECT_EQ(d.mem_bytes, 4ull << 30);
    }
  }
  // Two GPUs share each PCIe link, as on the real S1070.
  const SystemConfig cfg4 = SystemConfig::teslaS1070(4);
  EXPECT_EQ(cfg4.devices[0].pcie_link, cfg4.devices[1].pcie_link);
  EXPECT_EQ(cfg4.devices[2].pcie_link, cfg4.devices[3].pcie_link);
  EXPECT_NE(cfg4.devices[0].pcie_link, cfg4.devices[2].pcie_link);
  EXPECT_EQ(cfg4.links.size(), 2u);
}

TEST(SystemConfig, InvalidGpuCountRejected) {
  EXPECT_THROW(SystemConfig::teslaS1070(0), UsageError);
  EXPECT_THROW(SystemConfig::teslaS1070(5), UsageError);
}

TEST(SystemConfig, HeterogeneousLabHasCpuAndTwoGpus) {
  const SystemConfig cfg = SystemConfig::heterogeneousLab();
  ASSERT_EQ(cfg.devices.size(), 3u);
  EXPECT_EQ(cfg.devices[0].type, DeviceType::CPU);
  EXPECT_EQ(cfg.devices[1].type, DeviceType::GPU);
  EXPECT_EQ(cfg.devices[2].type, DeviceType::GPU);
  // clearly different GPU characteristics
  EXPECT_GT(cfg.devices[1].cores, 2 * cfg.devices[2].cores);
}

TEST(System, TransferCostScalesWithBytes) {
  System sys(SystemConfig::teslaS1070(1));
  const auto small = sys.reserveTransfer(0, 1 << 10, 0.0);
  sys.resetClock();
  const auto large = sys.reserveTransfer(0, 1 << 24, 0.0);
  EXPECT_GT(large.duration(), small.duration());
  // 16 MiB over 5.2 GB/s is about 3.2 ms
  EXPECT_NEAR(large.duration(), (1 << 24) / 5.2e9 + 20e-6, 1e-4);
}

TEST(System, SharedLinkContention) {
  // GPUs 0 and 1 share link 0: their transfers serialize.
  System sys(SystemConfig::teslaS1070(2));
  const auto a = sys.reserveTransfer(0, 1 << 20, 0.0);
  const auto b = sys.reserveTransfer(1, 1 << 20, 0.0);
  EXPECT_GE(b.start, a.end);
}

TEST(System, SeparateLinksOverlap) {
  // GPUs 0 and 2 are on different links in the 4-GPU S1070.
  System sys(SystemConfig::teslaS1070(4));
  const auto a = sys.reserveTransfer(0, 1 << 20, 0.0);
  const auto c = sys.reserveTransfer(2, 1 << 20, 0.0);
  EXPECT_DOUBLE_EQ(c.start, 0.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
}

TEST(System, KernelCostScalesWithInstructions) {
  System sys(SystemConfig::teslaS1070(1));
  const auto a = sys.reserveKernel(0, 1'000'000, 1024, 1.0, 0.0, 0.0);
  sys.resetClock();
  const auto b = sys.reserveKernel(0, 100'000'000, 1024, 1.0, 0.0, 0.0);
  EXPECT_NEAR(b.duration() / a.duration(), 100.0, 1.0);
}

TEST(System, FewWorkItemsLimitParallelism) {
  // The paper (Section V) notes GPUs are poor at reducing few elements: with
  // fewer work-items than cores, throughput drops proportionally.
  System sys(SystemConfig::teslaS1070(1));
  const auto wide = sys.reserveKernel(0, 1'000'000, 240, 1.0, 0.0, 0.0);
  sys.resetClock();
  const auto narrow = sys.reserveKernel(0, 1'000'000, 4, 1.0, 0.0, 0.0);
  EXPECT_NEAR(narrow.duration() / wide.duration(), 60.0, 1.0);
}

TEST(System, ApiEfficiencyScalesKernelTime) {
  System sys(SystemConfig::teslaS1070(1));
  const auto cuda = sys.reserveKernel(0, 10'000'000, 1024, 1.0, 0.0, 0.0);
  sys.resetClock();
  const auto ocl = sys.reserveKernel(0, 10'000'000, 1024, 0.84, 0.0, 0.0);
  EXPECT_NEAR(ocl.duration() / cuda.duration(), 1.0 / 0.84, 1e-6);
}

TEST(System, HostComputeAdvancesHostClock) {
  System sys(SystemConfig::teslaS1070(1));
  EXPECT_DOUBLE_EQ(sys.hostNow(), 0.0);
  sys.reserveHostCompute(12'000'000'000ull, 0);  // 12 GB touched at 12 GB/s = 1 s
  EXPECT_NEAR(sys.hostNow(), 1.0, 1e-9);
}

TEST(System, HostComputeUsesLargerOfMemOrFlops) {
  System sys(SystemConfig::teslaS1070(1));
  const auto memBound = sys.reserveHostCompute(12'000'000'000ull, 1);
  System sys2(SystemConfig::teslaS1070(1));
  const auto cpuBound = sys2.reserveHostCompute(1, 9'000'000'000ull);
  EXPECT_NEAR(memBound.duration(), 1.0, 1e-9);
  EXPECT_NEAR(cpuBound.duration(), 1.0, 1e-9);
}

TEST(System, PeerTransferUsesBothLinks) {
  System sys(SystemConfig::teslaS1070(4));
  const auto span = sys.reservePeerTransfer(0, 2, 1 << 20, 0.0);
  // down + up, so about twice the single-hop duration
  sys.resetClock();
  const auto one = sys.reserveTransfer(0, 1 << 20, 0.0);
  EXPECT_NEAR(span.duration(), 2 * one.duration(), 1e-6);
}

TEST(System, ExtraLatencyModelsNetworkHop) {
  System sys(SystemConfig::teslaS1070(1));
  const auto local = sys.reserveTransfer(0, 1 << 10, 0.0);
  sys.resetClock();
  sys.setDeviceExtraLatency(0, 120e-6, 0.117);  // dOpenCL: GbE
  const auto remote = sys.reserveTransfer(0, 1 << 10, 0.0);
  EXPECT_GT(remote.duration(), local.duration() + 100e-6);
}

TEST(System, StatsAccumulateAndReset) {
  System sys(SystemConfig::teslaS1070(1));
  sys.reserveTransfer(0, 1024, 0.0);
  sys.reserveKernel(0, 500, 10, 1.0, 0.0, 0.0);
  EXPECT_EQ(sys.stats().transfers, 1u);
  EXPECT_EQ(sys.stats().bytes_transferred, 1024u);
  EXPECT_EQ(sys.stats().kernel_launches, 1u);
  EXPECT_EQ(sys.stats().instructions_executed, 500u);
  sys.resetClock();
  EXPECT_EQ(sys.stats().transfers, 0u);
}

TEST(System, DeviceIndexValidated) {
  System sys(SystemConfig::teslaS1070(1));
  EXPECT_THROW(sys.device(1), UsageError);
  EXPECT_THROW(sys.device(-1), UsageError);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(1000, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallelFor(0, [&](std::uint64_t, std::uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(100, [](std::uint64_t b, std::uint64_t) {
        if (b == 0) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.nextU64() == b.nextU64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

}  // namespace
