// Lexer unit tests: token kinds, literals, comments, locations, errors.
#include <gtest/gtest.h>

#include "kernelc/diagnostics.hpp"
#include "kernelc/lexer.hpp"

using namespace skelcl::kc;

namespace {

std::vector<Token> lex(const std::string& src) { return Lexer(src).run(); }

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const auto& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(KernelcLexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, Tok::Eof);
}

TEST(KernelcLexer, WhitespaceOnlyYieldsEof) {
  EXPECT_EQ(kinds("  \t\n \r\n "), (std::vector<Tok>{Tok::Eof}));
}

TEST(KernelcLexer, Identifiers) {
  const auto tokens = lex("foo _bar baz123 _1x");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].text, "_bar");
  EXPECT_EQ(tokens[2].text, "baz123");
  EXPECT_EQ(tokens[3].text, "_1x");
  for (int i = 0; i < 4; ++i) EXPECT_EQ(tokens[static_cast<size_t>(i)].kind, Tok::Identifier);
}

TEST(KernelcLexer, Keywords) {
  EXPECT_EQ(kinds("if else for while do break continue return"),
            (std::vector<Tok>{Tok::KwIf, Tok::KwElse, Tok::KwFor, Tok::KwWhile, Tok::KwDo,
                              Tok::KwBreak, Tok::KwContinue, Tok::KwReturn, Tok::Eof}));
}

TEST(KernelcLexer, TypeKeywords) {
  EXPECT_EQ(kinds("void bool int uint unsigned float double struct typedef"),
            (std::vector<Tok>{Tok::KwVoid, Tok::KwBool, Tok::KwInt, Tok::KwUint, Tok::KwUint,
                              Tok::KwFloat, Tok::KwDouble, Tok::KwStruct, Tok::KwTypedef,
                              Tok::Eof}));
}

TEST(KernelcLexer, OpenClQualifiers) {
  EXPECT_EQ(kinds("__kernel kernel __global global __local local const"),
            (std::vector<Tok>{Tok::KwKernel, Tok::KwKernel, Tok::KwGlobal, Tok::KwGlobal,
                              Tok::KwLocal, Tok::KwLocal, Tok::KwConst, Tok::Eof}));
}

TEST(KernelcLexer, IntLiterals) {
  const auto tokens = lex("0 42 123456789 0x1F 0xff");
  EXPECT_EQ(tokens[0].intValue, 0u);
  EXPECT_EQ(tokens[1].intValue, 42u);
  EXPECT_EQ(tokens[2].intValue, 123456789u);
  EXPECT_EQ(tokens[3].intValue, 0x1Fu);
  EXPECT_EQ(tokens[4].intValue, 0xffu);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(tokens[static_cast<size_t>(i)].kind, Tok::IntLiteral);
}

TEST(KernelcLexer, UnsignedSuffix) {
  const auto tokens = lex("42u 7U");
  EXPECT_EQ(tokens[0].kind, Tok::IntLiteral);
  EXPECT_NE(tokens[0].text.find('u'), std::string::npos);
  EXPECT_EQ(tokens[1].intValue, 7u);
}

TEST(KernelcLexer, FloatLiterals) {
  const auto tokens = lex("1.0 2.5f 3. .5 1e3 1.5e-2 2E+4f");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, Tok::FloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].floatValue, 1.0);
  EXPECT_FALSE(tokens[0].isFloat32);  // no suffix -> double, as in C
  EXPECT_TRUE(tokens[1].isFloat32);
  EXPECT_DOUBLE_EQ(tokens[1].floatValue, 2.5);
  EXPECT_DOUBLE_EQ(tokens[2].floatValue, 3.0);
  EXPECT_DOUBLE_EQ(tokens[3].floatValue, 0.5);
  EXPECT_DOUBLE_EQ(tokens[4].floatValue, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[5].floatValue, 0.015);
  EXPECT_TRUE(tokens[6].isFloat32);
  EXPECT_DOUBLE_EQ(tokens[6].floatValue, 20000.0);
}

TEST(KernelcLexer, IntThenDotDistinction) {
  // `a.x` after an int: `1 . x` would be invalid member access, but the lexer
  // must not glue `1.` when followed by an identifier character.
  const auto tokens = lex("v[1].x");
  EXPECT_EQ(tokens[0].kind, Tok::Identifier);
  EXPECT_EQ(tokens[1].kind, Tok::LBracket);
  EXPECT_EQ(tokens[2].kind, Tok::IntLiteral);
  EXPECT_EQ(tokens[3].kind, Tok::RBracket);
  EXPECT_EQ(tokens[4].kind, Tok::Dot);
  EXPECT_EQ(tokens[5].kind, Tok::Identifier);
}

TEST(KernelcLexer, AllOperators) {
  EXPECT_EQ(kinds("+ - * / % ++ -- == != < <= > >= && || ! & | ^ ~ << >> ? :"),
            (std::vector<Tok>{Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash, Tok::Percent,
                              Tok::PlusPlus, Tok::MinusMinus, Tok::EqEq, Tok::NotEq, Tok::Less,
                              Tok::LessEq, Tok::Greater, Tok::GreaterEq, Tok::AmpAmp,
                              Tok::PipePipe, Tok::Bang, Tok::Amp, Tok::Pipe, Tok::Caret,
                              Tok::Tilde, Tok::Shl, Tok::Shr, Tok::Question, Tok::Colon,
                              Tok::Eof}));
}

TEST(KernelcLexer, CompoundAssignmentOperators) {
  EXPECT_EQ(kinds("= += -= *= /= %= &= |= ^= <<= >>="),
            (std::vector<Tok>{Tok::Assign, Tok::PlusAssign, Tok::MinusAssign, Tok::StarAssign,
                              Tok::SlashAssign, Tok::PercentAssign, Tok::AmpAssign,
                              Tok::PipeAssign, Tok::CaretAssign, Tok::ShlAssign, Tok::ShrAssign,
                              Tok::Eof}));
}

TEST(KernelcLexer, ArrowVsMinus) {
  EXPECT_EQ(kinds("a->b a-b a--b"),
            (std::vector<Tok>{Tok::Identifier, Tok::Arrow, Tok::Identifier, Tok::Identifier,
                              Tok::Minus, Tok::Identifier, Tok::Identifier, Tok::MinusMinus,
                              Tok::Identifier, Tok::Eof}));
}

TEST(KernelcLexer, LineComments) {
  EXPECT_EQ(kinds("a // comment with * and /\nb"),
            (std::vector<Tok>{Tok::Identifier, Tok::Identifier, Tok::Eof}));
}

TEST(KernelcLexer, BlockComments) {
  EXPECT_EQ(kinds("a /* multi \n line \n comment */ b"),
            (std::vector<Tok>{Tok::Identifier, Tok::Identifier, Tok::Eof}));
}

TEST(KernelcLexer, UnterminatedBlockCommentFails) {
  EXPECT_THROW(lex("a /* never closed"), CompileError);
}

TEST(KernelcLexer, UnexpectedCharacterFails) {
  EXPECT_THROW(lex("a @ b"), CompileError);
  EXPECT_THROW(lex("a $ b"), CompileError);
  EXPECT_THROW(lex("a # b"), CompileError);
}

TEST(KernelcLexer, BadSuffixFails) { EXPECT_THROW(lex("12x"), CompileError); }

TEST(KernelcLexer, SourceLocations) {
  const auto tokens = lex("a\n  b\n\nc");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.column, 3);
  EXPECT_EQ(tokens[2].loc.line, 4);
  EXPECT_EQ(tokens[2].loc.column, 1);
}

TEST(KernelcLexer, ErrorCarriesLocation) {
  try {
    lex("ab\ncd @");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_EQ(e.diagnostics()[0].loc.line, 2);
    EXPECT_EQ(e.diagnostics()[0].loc.column, 4);
  }
}

TEST(KernelcLexer, LongSuffixIgnored) {
  const auto tokens = lex("42l 42L 42ul");
  EXPECT_EQ(tokens[0].intValue, 42u);
  EXPECT_EQ(tokens[1].intValue, 42u);
  EXPECT_EQ(tokens[2].intValue, 42u);
}

}  // namespace
