// Tests for the skelcheck differential checker (src/check/) and regression
// tests for the Vector/Distribution bugs it caught.  The checker tests drive
// runProgram(), which executes each program in lockstep against the live
// runtime and the host-side reference model — a passing run means the two
// agreed on error classes, coherence flags, layouts and contents after every
// op.  The regression tests pin the fixed behaviors down directly on the
// Vector API (each one failed before its fix).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/generator.hpp"
#include "check/runner.hpp"
#include "check/vector_access.hpp"
#include "core/detail/runtime.hpp"
#include "core/skelcl.hpp"

using namespace skelcl;
using namespace skelcl::check;

namespace {

// --- checker self-tests (no fixture: runProgram inits/terminates itself) ----

TEST(SkelcheckGenerator, Deterministic) {
  EXPECT_EQ(serialize(generate(5, 30)), serialize(generate(5, 30)));
  EXPECT_NE(serialize(generate(5, 30)), serialize(generate(6, 30)));
}

TEST(SkelcheckReplay, SerializeParseRoundTrip) {
  for (std::uint64_t seed : {0ull, 7ull, 23ull}) {
    const Program p = generate(seed, 40);
    const std::string text = serialize(p);
    const Program q = parse(text);
    EXPECT_EQ(serialize(q), text) << "seed " << seed;
  }
}

TEST(SkelcheckReplay, ParseRejectsGarbage) {
  EXPECT_THROW(parse("not a skelcheck file"), std::runtime_error);
  EXPECT_THROW(parse("skelcheck v1\nop kind=nonsense\n"), std::runtime_error);
}

TEST(SkelcheckReplay, CopyCombineAdoptionShrunkRepro) {
  // The shrunk repro for the copy() -> copy(combine) adoption bug, replayed
  // through the full differential checker: on the pre-fix code the system
  // kept first-replica-wins downloads while the model folded, so this
  // program diverged at the probe.
  const char* repro =
      "skelcheck v1\n"
      "config devices=4 elem=i32 n=37 kcopt=1 seed=0 pool=2\n"
      "fill a=0 base=3 step=2\n"
      "setdist a=0 dist=copy\n"
      "map a=0 dst=0 fn=neg inplace=1\n"
      "poke a=0 device=1 base=11 step=1\n"
      "setdist a=0 dist=copy+add\n"
      "probe a=0\n";
  const RunResult res = runProgram(parse(repro));
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(SkelcheckReplay, SessionOpSwitchesPerSessionWeights) {
  // Partition weights are per-session state: session 1 partitions 100
  // elements as 50/17/0/33 while the default session stays at even blocks.
  // The lockstep run compares part layouts after every op, so this diverges
  // if either side leaks weights across sessions or fails to re-plan the
  // cached partition on a session switch.
  const char* repro =
      "skelcheck v1\n"
      "config devices=4 elem=i32 n=100 kcopt=1 seed=0 pool=2\n"
      "fill a=0 base=3 step=2\n"
      "session slot=1 w=3,1,0,2\n"
      "map a=0 dst=1 fn=neg inplace=0\n"
      "probe a=1\n"
      "session slot=0\n"
      "map a=0 dst=1 fn=neg inplace=0\n"
      "probe a=1\n"
      "weights w=0,1,1,0\n"
      "map a=0 dst=1 fn=neg inplace=0\n"
      "session slot=1\n"
      "map a=0 dst=1 fn=neg inplace=0\n"
      "probe a=1\n";
  const Program parsed = parse(repro);
  EXPECT_EQ(serialize(parse(serialize(parsed))), serialize(parsed));
  const RunResult res = runProgram(parsed);
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(SkelcheckReplay, StencilOpsWithKillRecovery) {
  // Hand-written stencil program: a 1D map-overlap with clamp padding, a
  // matrix stencil, and a device kill injected between them — the lockstep
  // run pins the halo-exchange command order and the repartition-and-retry
  // recovery bit-identically against the model.  The in-place map-overlap
  // raises UsageError on both sides (compared, not fatal).
  const char* repro =
      "skelcheck v1\n"
      "config devices=4 elem=i32 n=64 kcopt=1 seed=0 pool=3\n"
      "fill a=0 base=-7 step=3\n"
      "mapoverlap a=0 dst=1 fn=s1sum inplace=0 r=2 pad=1 ci=0 cf=0\n"
      "probe a=1\n"
      "mapoverlap a=1 dst=1 fn=s1diff inplace=1 r=1 pad=0 ci=5 cf=0\n"
      "fault kill=1 after=6\n"
      "matstencil a=0 dst=2 fn=s2sum r=1 pad=0 cols=8 ci=-3 cf=0\n"
      "probe a=2\n"
      "mapoverlap a=2 dst=0 fn=s1sum inplace=0 r=3 pad=0 ci=9 cf=0\n"
      "probe a=0\n"
      "probe a=1\n";
  const Program parsed = parse(repro);
  EXPECT_EQ(serialize(parse(serialize(parsed))), serialize(parsed));
  const RunResult res = runProgram(parsed);
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(SkelcheckReplay, EmptyVectorsFlowThroughEverySkeleton) {
  // n = 0 is a legal configuration: empty vectors flow through map, zip,
  // scan and both stencils as no-ops, and reduce raises UsageError on both
  // sides — every outcome is compared in lockstep.
  const char* repro =
      "skelcheck v1\n"
      "config devices=4 elem=i32 n=0 kcopt=1 seed=0 pool=2\n"
      "fill a=0 base=1 step=1\n"
      "setdist a=0 dist=block\n"
      "map a=0 dst=1 fn=neg inplace=0\n"
      "zip a=0 b=1 dst=1 fn=add inplace=0\n"
      "scan a=1 dst=0 fn=add inplace=0\n"
      "reduce a=0 fn=add\n"
      "mapoverlap a=0 dst=1 fn=s1sum inplace=0 r=1 pad=0 ci=0 cf=0\n"
      "matstencil a=0 dst=1 fn=s2sum r=1 pad=1 cols=3 ci=0 cf=0\n"
      "probe a=0\n"
      "probe a=1\n";
  const RunResult res = runProgram(parse(repro));
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(SkelcheckSmoke, FixedSeedsNoDivergence) {
  // A slice of the CI smoke gate (`skelcheck --smoke` runs 64 seeds); enough
  // here to cover 1/2/4 devices, both element types and both VM pipelines,
  // which generate() derives from the seed alone.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const RunResult res = runProgram(generate(seed, 30));
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.message;
  }
}

// --- exhaustive distribution-transition matrix ------------------------------
// Every ordered pair of the five distribution kinds, with the data forced
// onto the devices under the first distribution, optionally dirtied (host
// write, or a direct device write on a copy of the data), then probed under
// the second.  runProgram compares contents and every coherence flag against
// the reference model, so this pins the full transition semantics, including
// the copy()/copy(combine) download rules.

DistSpec distSpec(DistKind k) {
  DistSpec d;
  d.kind = k;
  switch (k) {
    case DistKind::Single: d.device = 1; break;
    case DistKind::WBlock: d.weights = {3.0, 1.0, 0.0, 2.0}; break;
    case DistKind::CopyCombine: d.fn = "add"; break;
    default: break;
  }
  return d;
}

Op fillOp(int slot) {
  Op op;
  op.kind = OpKind::Fill;
  op.a = slot;
  op.base = 3;
  op.step = 2;
  return op;
}

Op setDistOp(int slot, DistKind k) {
  Op op;
  op.kind = OpKind::SetDist;
  op.a = slot;
  op.dist = distSpec(k);
  return op;
}

Op mapInPlaceOp(int slot) {
  Op op;
  op.kind = OpKind::Map;
  op.a = slot;
  op.dst = slot;
  op.inPlace = true;
  op.fn = "neg";
  return op;
}

Op writeOp(int slot) {
  Op op;
  op.kind = OpKind::Write;
  op.a = slot;
  op.index = 5;
  op.value = 99;
  return op;
}

Op pokeOp(int slot, int device) {
  Op op;
  op.kind = OpKind::Poke;
  op.a = slot;
  op.device = device;
  op.base = 11;
  op.step = 1;
  return op;
}

Op probeOp(int slot) {
  Op op;
  op.kind = OpKind::Probe;
  op.a = slot;
  return op;
}

TEST(SkelcheckDistMatrix, EveryOrderedTransitionMatchesModel) {
  constexpr DistKind kKinds[] = {DistKind::Single, DistKind::Block, DistKind::WBlock,
                                 DistKind::Copy, DistKind::CopyCombine};
  // 0: clean transition; 1: host write between the distributions (devices
  // stale); 2: device write between them (host stale — the combine path).
  for (int variant = 0; variant < 3; ++variant) {
    for (DistKind from : kKinds) {
      for (DistKind to : kKinds) {
        Program p;
        p.cfg.devices = 4;
        p.cfg.elem = ElemType::I32;
        p.cfg.n = 37;
        p.cfg.poolSize = 2;
        p.ops.push_back(fillOp(0));
        p.ops.push_back(setDistOp(0, from));
        p.ops.push_back(mapInPlaceOp(0));  // forces materialization under `from`
        if (variant == 1) p.ops.push_back(writeOp(0));
        if (variant == 2) p.ops.push_back(pokeOp(0, 0));
        p.ops.push_back(setDistOp(0, to));
        p.ops.push_back(probeOp(0));
        p.ops.push_back(mapInPlaceOp(0));  // re-materialize under `to`
        p.ops.push_back(probeOp(0));
        sanitize(p);
        const RunResult res = runProgram(p);
        EXPECT_TRUE(res.ok) << "variant " << variant << " "
                            << serialize(p) << "\n" << res.message;
      }
    }
  }
}

// --- regression tests for the bugs the checker caught -----------------------

constexpr const char* kAddI = "int func(int a, int b) { return a + b; }";

class SkelcheckRegression : public ::testing::Test {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(4)); }
  void TearDown() override { terminate(); }

  /// Give each device's replica of `v` the value `device + 1` everywhere.
  static void divergeReplicas(Vector<int>& v) {
    const auto& parts = v.impl().ensureOnDevices();
    for (std::size_t d = 0; d < parts.size(); ++d) {
      const int val = static_cast<int>(d) + 1;
      for (std::size_t i = 0; i < v.size(); ++i) {
        std::memcpy(parts[d].buffer->data() + i * sizeof(int), &val, sizeof(int));
      }
    }
    v.dataOnDevicesModified();
  }
};

// Bug: ensureOnDevices / ensureOnDevicesNoUpload early-returned when the part
// layout already matched the requested distribution without adopting it, so a
// copy() -> copy(combine) switch (identical layouts) left current_ at plain
// copy and the eventual download used first-replica-wins instead of the fold.
TEST_F(SkelcheckRegression, CopyToCopyCombineAdoptedOnMatchingLayout) {
  Vector<int> v(8);
  v.setDistribution(Distribution::copy());
  divergeReplicas(v);
  v.setDistribution(Distribution::copy(kAddI));
  v.impl().ensureOnDevices();  // layout matches: must adopt, not just return
  EXPECT_EQ(v.impl().currentDistribution().kind(), Distribution::Kind::Copy);
  EXPECT_TRUE(v.impl().currentDistribution().hasCombine());
  EXPECT_EQ(v[0], 1 + 2 + 3 + 4);
  EXPECT_EQ(v[7], 1 + 2 + 3 + 4);
}

// Same bug, host-read path: a direct read after the lazy setDistribution must
// adopt the matching layout inside ensureHostValid and fold.
TEST_F(SkelcheckRegression, HostReadAfterLazyCopyCombineSwitchFolds) {
  Vector<int> v(8);
  v.setDistribution(Distribution::copy());
  divergeReplicas(v);
  v.setDistribution(Distribution::copy(kAddI));
  EXPECT_EQ(v[3], 1 + 2 + 3 + 4);  // no explicit ensureOnDevices in between
}

// And the downgrade direction: copy(combine) -> copy() must stop folding.
TEST_F(SkelcheckRegression, CopyCombineToPlainCopyStopsFolding) {
  Vector<int> v(8);
  v.setDistribution(Distribution::copy(kAddI));
  divergeReplicas(v);
  v.setDistribution(Distribution::copy());
  EXPECT_EQ(v[0], 1);  // first replica wins, no fold
}

// Bug: the combine fold in combineCopiesToHost read staged[p].data() for
// every p >= 1, but zero-sized parts never stage a download — the fold read
// the vector's full byte count through a null pointer.  Zero-sized copy parts
// have no natural construction path, so forge one through the test peer.
TEST_F(SkelcheckRegression, ZeroSizedCopyPartSkippedInCombineFold) {
  Vector<int> v(8);
  v.setDistribution(Distribution::copy(kAddI));
  divergeReplicas(v);
  auto& parts = skelcl::detail::VectorDataTestAccess::partsMut(v.impl());
  ASSERT_EQ(parts.size(), 4u);
  parts[1].size = 0;
  parts[1].buffer.reset();
  // Fold must cover devices 0, 2, 3 and skip the empty part: 1 + 3 + 4.
  EXPECT_EQ(v[0], 1 + 3 + 4);
  EXPECT_EQ(v[7], 1 + 3 + 4);
}

// Bug: the two Distribution::partition overloads validated block weights
// differently — the deviceCount overload demanded exactly one weight per
// device while the device-list overload only required coverage of the ids it
// consults.  Both now share the coverage rule.
TEST(DistributionPartition, WeightValidationUnifiedAcrossOverloads) {
  const Distribution undersized = Distribution::block({1.0, 2.0, 3.0});
  EXPECT_THROW(undersized.partition(100, 4), UsageError);
  EXPECT_THROW(undersized.partition(100, std::vector<int>{0, 1, 2, 3}), UsageError);

  // A covering-but-larger table is fine for both, with identical results.
  const Distribution oversized = Distribution::block({1.0, 1.0, 1.0, 1.0, 5.0});
  const auto a = oversized.partition(100, 4);
  const auto b = oversized.partition(100, std::vector<int>{0, 1, 2, 3});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].device, b[i].device);
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].size, b[i].size);
  }

  // Undersized tables are fine when the consulted ids stay in range.
  EXPECT_NO_THROW(undersized.partition(100, 2));
  EXPECT_NO_THROW(undersized.partition(100, std::vector<int>{0, 2}));
}

}  // namespace
