// Fault injection and fault-tolerant skeleton execution: the SKELCL_FAULTS
// grammar, seeded determinism, transient retries charged to the simulated
// clock, permanent device failure with blacklisting + redistribution over
// the survivors (map/reduce/scan, 2 and 4 GPUs), modeled VRAM exhaustion,
// dOpenCL server death, and the OSEM degradation acceptance scenario: a
// 4-GPU reconstruction that loses one GPU mid-iteration must finish on the
// surviving three with a bit-identical image.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/detail/runtime.hpp"
#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"
#include "docl/docl.hpp"
#include "osem/osem.hpp"

using namespace skelcl;

namespace {

// Float atomics (OSEM's atomic_add_f) are order-sensitive under the
// multi-threaded kernel executor; pin the VM to one thread so every run of
// this binary is bit-deterministic.  Must happen before the thread pool's
// first use, hence a static initializer.
const int kForceSingleThread = [] {
  setenv("SKELCL_THREADS", "1", 1);
  return 0;
}();

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    trace::disable();
    trace::clear();
    unsetenv("SKELCL_FAULTS");
    if (detail::Runtime::initialized()) terminate();
  }
};

std::vector<int> iotaInts(std::size_t n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// --- FaultPlan grammar -------------------------------------------------------

TEST(FaultPlanParse, FullGrammarRoundTrip) {
  const auto plan = sim::FaultPlan::parse(
      "seed:42;retries:5;backoff:200us;transfer:dev0:count2;kernel:dev*:p0.25;"
      "net:dev3:count1:timeout500us;net:dev4:p0.1;kill:dev2:after120;"
      "kill:dev1:at5ms;oom:dev0:bytes1048576");
  EXPECT_EQ(plan.seed(), 42u);
  EXPECT_EQ(plan.retryPolicy().max_attempts, 5);
  EXPECT_DOUBLE_EQ(plan.retryPolicy().base_backoff_s, 200e-6);
  ASSERT_EQ(plan.rules().size(), 6u);  // oom goes to memoryCaps, not rules
  EXPECT_EQ(plan.rules()[0].device, 0);
  EXPECT_EQ(plan.rules()[1].device, -1);
  EXPECT_DOUBLE_EQ(plan.rules()[2].time_s, 500e-6);  // net timeout
  EXPECT_DOUBLE_EQ(plan.rules()[4].time_s, 0.0);     // kill after count
  EXPECT_DOUBLE_EQ(plan.rules()[5].time_s, 5e-3);    // kill at 5ms
  ASSERT_EQ(plan.memoryCaps().size(), 1u);
  EXPECT_EQ(plan.memoryCaps()[0].second, std::uint64_t{1048576});
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParse, MalformedSpecsThrow) {
  EXPECT_THROW(sim::FaultPlan::parse("bogus:dev0:count1"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("kill:dev*:after3"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("transfer:dev0"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("transfer:gpu0:count1"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("oom:dev0:count3"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("transfer:dev0:count0"), UsageError);
}

TEST(FaultPlanParse, SlowAndHangClauses) {
  const auto plan = sim::FaultPlan::parse(
      "slow:dev2:x8;slow:dev0:x2.5:count3;hang:dev1;hang:dev*:count2");
  ASSERT_EQ(plan.rules().size(), 4u);

  EXPECT_EQ(plan.rules()[0].kind, sim::FaultPlan::Rule::Kind::Slowdown);
  EXPECT_EQ(plan.rules()[0].device, 2);
  EXPECT_DOUBLE_EQ(plan.rules()[0].factor, 8.0);
  EXPECT_EQ(plan.rules()[0].count, 0);  // persistent

  EXPECT_EQ(plan.rules()[1].kind, sim::FaultPlan::Rule::Kind::Slowdown);
  EXPECT_EQ(plan.rules()[1].device, 0);
  EXPECT_DOUBLE_EQ(plan.rules()[1].factor, 2.5);
  EXPECT_EQ(plan.rules()[1].count, 3);

  EXPECT_EQ(plan.rules()[2].kind, sim::FaultPlan::Rule::Kind::Hang);
  EXPECT_EQ(plan.rules()[2].device, 1);
  EXPECT_EQ(plan.rules()[2].count, 1);  // hang defaults to one command

  EXPECT_EQ(plan.rules()[3].kind, sim::FaultPlan::Rule::Kind::Hang);
  EXPECT_EQ(plan.rules()[3].device, -1);  // dev* wildcard
  EXPECT_EQ(plan.rules()[3].count, 2);

  // Slowdowns and hangs stall whatever command is in flight.
  for (const auto& rule : plan.rules()) EXPECT_TRUE(rule.any_class);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParse, MalformedSlowAndHangClausesThrow) {
  EXPECT_THROW(sim::FaultPlan::parse("slow:dev0"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("slow:dev0:8"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("slow:dev0:x0.5"), UsageError);  // < 1 speeds up
  EXPECT_THROW(sim::FaultPlan::parse("slow:dev0:x8:count0"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("slow:dev0:x8:times2"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("hang:dev0:count0"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("hang:dev0:0"), UsageError);
  EXPECT_THROW(sim::FaultPlan::parse("hang:dev0:count1:extra"), UsageError);

  // The error names the clause that failed, not just "bad spec".
  try {
    sim::FaultPlan::parse("kill:dev1:after3;slow:dev0:x0.5");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("slow:dev0:x0.5"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlanParse, EmptyAndUnsetSpecsYieldEmptyPlans) {
  EXPECT_TRUE(sim::FaultPlan::parse("").empty());
  unsetenv("SKELCL_FAULTS");
  EXPECT_TRUE(sim::FaultPlan::fromEnv().empty());
}

// --- seeded determinism ------------------------------------------------------

TEST(FaultInjector, SameSeedSameDecisions) {
  sim::FaultPlan plan(99);
  plan.failRandomly(-1, sim::CommandClass::Kernel, 0.5);

  auto decisions = [&plan] {
    sim::FaultInjector inj;
    inj.install(plan);
    std::vector<int> kinds;
    for (int i = 0; i < 200; ++i) {
      kinds.push_back(
          static_cast<int>(inj.onCommand(i % 4, sim::CommandClass::Kernel, 0.0).kind));
    }
    return kinds;
  };
  const auto a = decisions();
  const auto b = decisions();
  EXPECT_EQ(a, b) << "the same plan must replay the same fault sequence";

  sim::FaultPlan other(100);
  other.failRandomly(-1, sim::CommandClass::Kernel, 0.5);
  sim::FaultInjector inj;
  inj.install(other);
  std::vector<int> c;
  for (int i = 0; i < 200; ++i) {
    c.push_back(static_cast<int>(inj.onCommand(i % 4, sim::CommandClass::Kernel, 0.0).kind));
  }
  EXPECT_NE(a, c) << "a different seed should produce a different stream";
}

TEST(FaultInjector, KillAfterCountsPerDevice) {
  sim::FaultPlan plan;
  plan.killAfterCommands(1, 2);
  sim::FaultInjector inj;
  inj.install(plan);
  using K = sim::FaultDecision::Kind;
  EXPECT_EQ(inj.onCommand(1, sim::CommandClass::Transfer, 0.0).kind, K::None);
  EXPECT_EQ(inj.onCommand(0, sim::CommandClass::Transfer, 0.0).kind, K::None);
  EXPECT_EQ(inj.onCommand(1, sim::CommandClass::Kernel, 0.0).kind, K::None);
  EXPECT_EQ(inj.onCommand(1, sim::CommandClass::Kernel, 0.0).kind, K::DeviceLost);
  EXPECT_TRUE(inj.deviceDead(1));
  EXPECT_FALSE(inj.deviceDead(0));
  // every later command on the dead device fails permanently
  EXPECT_EQ(inj.onCommand(1, sim::CommandClass::Transfer, 0.0).kind, K::DeviceLost);
}

// --- transient faults + retry ------------------------------------------------

TEST_F(FaultTest, TransientKernelFaultsAreRetriedOnTheSimClock) {
  init(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan(1);
  plan.failKernels(0, 2).backoff(100e-6, 2.0);
  setFaultPlan(std::move(plan));

  trace::enable();
  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> v(1024);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  Vector<int> out = twice(v);
  finish();
  trace::disable();

  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 2 * static_cast<int>(i));
  }
  // Two failed attempts => backoffs of 100us and 200us charged to the
  // simulated host clock before the third attempt succeeds.
  EXPECT_GE(simTimeSeconds(), 300e-6);
  EXPECT_EQ(aliveDeviceCount(), 2) << "transient faults must not blacklist";

  int faults = 0, retries = 0;
  for (const auto& r : trace::snapshot()) {
    faults += r.kind == trace::Record::Kind::Fault;
    retries += r.kind == trace::Record::Kind::Retry;
    if (r.kind == trace::Record::Kind::Retry) {
      EXPECT_NE(r.name.find("attempt"), std::string::npos) << r.name;
    }
  }
  EXPECT_EQ(faults, 2);
  EXPECT_EQ(retries, 2);
}

TEST_F(FaultTest, ExhaustedRetriesSurfaceTheCommandError) {
  init(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan;
  plan.retries(3).failKernels(0, 50);  // more faults than attempts
  setFaultPlan(std::move(plan));

  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> v(64);
  EXPECT_THROW(twice(v), ocl::CommandError);
}

// --- permanent failure: blacklist + redistribution ---------------------------

TEST_F(FaultTest, MapSurvivesDeviceDeath) {
  for (const int gpus : {2, 4}) {
    init(sim::SystemConfig::teslaS1070(gpus));
    sim::FaultPlan plan;
    // on 2 GPUs the kernel dies, on 4 GPUs the very first upload dies
    plan.killAfterCommands(gpus - 1, gpus == 2 ? 1 : 0);
    setFaultPlan(std::move(plan));

    Map<int> f("int func(int x) { return 3 * x + 1; }");
    Vector<int> v(1000);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
    Vector<int> out = f(v);
    EXPECT_EQ(aliveDeviceCount(), gpus - 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], 3 * static_cast<int>(i) + 1) << "gpus=" << gpus << " i=" << i;
    }
    terminate();
  }
}

TEST_F(FaultTest, ReduceSurvivesDeviceDeath) {
  for (const int gpus : {2, 4}) {
    init(sim::SystemConfig::teslaS1070(gpus));
    sim::FaultPlan plan;
    plan.killAfterCommands(gpus - 1, 1);  // upload succeeds, step-1 kernel dies
    setFaultPlan(std::move(plan));

    Reduce<int> sum("int func(int a, int b) { return a + b; }");
    Vector<int> v(iotaInts(5000));
    const int result = sum(v);
    EXPECT_EQ(aliveDeviceCount(), gpus - 1);
    EXPECT_EQ(result, 5000 * 4999 / 2) << "gpus=" << gpus;
    terminate();
  }
}

TEST_F(FaultTest, ScanSurvivesDeviceDeath) {
  for (const int gpus : {2, 4}) {
    init(sim::SystemConfig::teslaS1070(gpus));
    sim::FaultPlan plan;
    plan.killAfterCommands(gpus - 1, 2);  // dies in the block-sums download
    setFaultPlan(std::move(plan));

    Scan<int> prefix("int func(int a, int b) { return a + b; }");
    Vector<int> v(3000);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i % 7);
    Vector<int> out = prefix(v);
    EXPECT_EQ(aliveDeviceCount(), gpus - 1);
    int expect = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      expect += static_cast<int>(i % 7);
      ASSERT_EQ(out[i], expect) << "gpus=" << gpus << " i=" << i;
    }
    terminate();
  }
}

TEST_F(FaultTest, InPlaceZipRestoresInputFromHostCopy) {
  init(sim::SystemConfig::teslaS1070(4));
  sim::FaultPlan plan;
  plan.killAfterCommands(2, 2);  // two uploads land, the zip kernel dies
  setFaultPlan(std::move(plan));

  Zip<int> axpy("int func(int a, int b) { return a + 10 * b; }");
  Vector<int> a(iotaInts(512)), b(iotaInts(512));
  axpy(out(a), a, b);  // in place: a = a + 10 * b
  EXPECT_EQ(aliveDeviceCount(), 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], 11 * static_cast<int>(i));
  }
  terminate();
}

TEST_F(FaultTest, SurvivingReplicaOfCopyDistributionIsReused) {
  init(sim::SystemConfig::teslaS1070(2));
  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> v(iotaInts(256));
  v.setDistribution(Distribution::copy());
  Vector<int> mid = twice(v);  // copy-distributed result, host copy stale
  ASSERT_FALSE(mid.impl().hostValid());

  sim::FaultPlan plan;
  plan.killAfterCommands(1, 0);
  setFaultPlan(std::move(plan));
  Map<int> incr("int func(int x) { return x + 1; }");
  Vector<int> out = incr(mid);  // device 1 dies; device 0's replica survives
  EXPECT_EQ(aliveDeviceCount(), 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 2 * static_cast<int>(i) + 1);
  }
  terminate();
}

TEST_F(FaultTest, LosingTheOnlyCopyOfBlockDataIsReportedAsDataLoss) {
  init(sim::SystemConfig::teslaS1070(2));
  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> v(iotaInts(256));
  Vector<int> mid = twice(v);  // block-distributed result, host copy stale
  ASSERT_FALSE(mid.impl().hostValid());

  sim::FaultPlan plan;
  plan.killAfterCommands(1, 0);  // device 1 held a unique block part
  setFaultPlan(std::move(plan));
  Map<int> incr("int func(int x) { return x + 1; }");
  EXPECT_THROW(incr(mid), DataLossError);
  terminate();
}

TEST_F(FaultTest, BlacklistedDeviceKeepsSchedulerWeightsOfSurvivors) {
  init(sim::SystemConfig::teslaS1070(4));
  setPartitionWeights({1.0, 2.0, 3.0, 2.0});
  blacklistDevice(3);
  EXPECT_EQ(aliveDeviceCount(), 3);

  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> out = twice(Vector<int>(iotaInts(600)));
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 2 * static_cast<int>(i));
  }
  // weights 1:2:3 over the three survivors
  EXPECT_EQ(out.impl().partSizeOn(0), 100u);
  EXPECT_EQ(out.impl().partSizeOn(1), 200u);
  EXPECT_EQ(out.impl().partSizeOn(2), 300u);
  EXPECT_EQ(out.impl().partSizeOn(3), 0u);
  terminate();
}

// --- modeled VRAM exhaustion -------------------------------------------------

TEST_F(FaultTest, MemoryCapMakesAllocationFail) {
  init(sim::SystemConfig::teslaS1070(1));
  sim::FaultPlan plan;
  plan.limitMemory(0, 1024);  // 1 KiB of VRAM
  setFaultPlan(std::move(plan));

  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> big(4096);  // 16 KiB > cap
  try {
    twice(big);
    FAIL() << "allocation beyond the cap must throw";
  } catch (const ResourceError& e) {
    EXPECT_NE(std::string(e.what()).find("CL_MEM_OBJECT_ALLOCATION_FAILURE"),
              std::string::npos)
        << e.what();
  }
  terminate();

  // Small data still fits under the same cap.
  init(sim::SystemConfig::teslaS1070(1));
  sim::FaultPlan small;
  small.limitMemory(0, 1024);
  setFaultPlan(std::move(small));
  Vector<int> ok(iotaInts(64));  // 256 B
  Vector<int> out = Map<int>("int func(int x) { return 2 * x; }")(ok);
  EXPECT_EQ(out[63], 126);
  terminate();
}

// --- event/dependency hygiene (satellites 1 & 2) -----------------------------

TEST_F(FaultTest, InvalidAndFailedDependenciesAreRejected) {
  init(sim::SystemConfig::teslaS1070(1));
  auto& rt = detail::Runtime::instance();
  ocl::Buffer buf(rt.context(), rt.device(0), 64);
  const char data[64] = {};

  const ocl::Event invalid;  // default-constructed
  EXPECT_THROW(rt.queue(0).enqueueWriteBuffer(buf, 0, 64, data, false,
                                              std::span<const ocl::Event>(&invalid, 1)),
               UsageError);

  const ocl::Event failed(0.0, 0.0, rt.system().clockEpoch(), sim::status::IoError);
  EXPECT_THROW(rt.queue(0).enqueueWriteBuffer(buf, 0, 64, data, false,
                                              std::span<const ocl::Event>(&failed, 1)),
               UsageError);
  terminate();
}

TEST_F(FaultTest, StaleQueueWatermarkIsDetected) {
  init(sim::SystemConfig::teslaS1070(2));
  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> v(iotaInts(128));
  (void)twice(v);
  finish();

  // Resetting only the system clock (not the queues) used to silently give
  // later commands completion times from the dead clock; now it is caught.
  detail::Runtime::instance().system().resetClock();
  Vector<int> w(iotaInts(128));
  EXPECT_THROW(twice(w), UsageError);
  terminate();

  // The public entry point resets both sides together.
  init(sim::SystemConfig::teslaS1070(2));
  Vector<int> u(iotaInts(128));
  (void)twice(u);
  finish();
  resetSimClock();
  Vector<int> out = twice(Vector<int>(iotaInts(128)));
  EXPECT_EQ(out[5], 10);
  terminate();
}

// --- dOpenCL: network faults and server death --------------------------------

TEST_F(FaultTest, UnreliableNetworkIsAbsorbedByRetries) {
  docl::DistributedConfig config = docl::laboratorySetup();
  config.network.drop_rate = 0.05;
  config.network.fault_seed = 7;

  auto run = [&config] {
    docl::initSkelCL(config);
    Zip<float> saxpy("float func(float x, float y, float a) { return a * x + y; }");
    const std::size_t n = 4096;
    Vector<float> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(i);
      y[i] = 1.0f;
    }
    Vector<float> out = saxpy(x, y, 3.0f);
    finish();
    const double t = simTimeSeconds();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(out[i], 3.0f * static_cast<float>(i) + 1.0f);
    }
    EXPECT_EQ(aliveDeviceCount(), 8) << "drops are transient, not fatal";
    terminate();
    return t;
  };
  const double t1 = run();
  const double t2 = run();
  EXPECT_DOUBLE_EQ(t1, t2) << "seeded drops must replay identically";
}

TEST(DoclNetworkFaults, PerDeviceSeedsDecorrelateDropStreams) {
  docl::DistributedConfig cfg;
  cfg.servers.push_back(sim::SystemConfig::teslaS1070(1));
  cfg.servers.push_back(sim::SystemConfig::teslaS1070(1));
  cfg.network.drop_rate = 0.2;
  cfg.network.fault_seed = 9;
  const sim::FaultPlan plan = docl::networkFaultPlan(cfg);
  ASSERT_EQ(plan.rules().size(), 2u);
  EXPECT_NE(plan.rules()[0].seed, plan.rules()[1].seed)
      << "each device needs its own drop stream";

  auto dropsOf = [&plan](int device) {
    sim::FaultInjector injector;
    injector.install(plan);
    std::vector<int> drops;
    for (int i = 0; i < 200; ++i) {
      const auto d = injector.onCommand(device, sim::CommandClass::Transfer, 0.0);
      if (d.kind != sim::FaultDecision::Kind::None) drops.push_back(i);
    }
    return drops;
  };
  const auto dev0 = dropsOf(0);
  const auto dev1 = dropsOf(1);
  EXPECT_FALSE(dev0.empty());
  EXPECT_FALSE(dev1.empty());
  EXPECT_NE(dev0, dev1) << "same-seed rule streams would drop on identical indices";
  EXPECT_EQ(dev0, dropsOf(0)) << "seeded streams must replay identically";

  // The regression that motivated per-rule seeds: commands aimed at another
  // device must not perturb this device's drop stream through interleaving.
  sim::FaultInjector injector;
  injector.install(plan);
  std::vector<int> interleaved;
  for (int i = 0; i < 200; ++i) {
    const auto d = injector.onCommand(0, sim::CommandClass::Transfer, 0.0);
    if (d.kind != sim::FaultDecision::Kind::None) interleaved.push_back(i);
    injector.onCommand(1, sim::CommandClass::Transfer, 0.0);
  }
  EXPECT_EQ(interleaved, dev0);
}

TEST_F(FaultTest, AliveServerDevicesTracksGpuLossAndNodeLoss) {
  const docl::DistributedConfig config = docl::laboratorySetup();
  docl::initSkelCL(config);
  const auto& alive = detail::Runtime::instance().aliveDevices();
  EXPECT_EQ(docl::aliveServerDevices(config, 0, alive), (std::vector<int>{0, 1, 2, 3}));

  // One GPU of node0 dies, then all of node2.
  sim::FaultPlan plan;
  plan.killAfterCommands(1, 0);
  docl::killServer(plan, config, 2, 0);
  setFaultPlan(std::move(plan));
  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> out = twice(Vector<int>(iotaInts(4096)));
  EXPECT_EQ(aliveDeviceCount(), 5);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 2 * static_cast<int>(i));
  }

  // The static range is now stale for nodes 0 and 2; the alive-subset helper
  // reflects the loss of a single GPU as well as a whole node.
  EXPECT_EQ(docl::aliveServerDevices(config, 0, alive), (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(docl::aliveServerDevices(config, 1, alive), (std::vector<int>{4, 5}));
  EXPECT_TRUE(docl::aliveServerDevices(config, 2, alive).empty());
  EXPECT_EQ(docl::serverDeviceRange(config, 2), (std::pair<int, int>{6, 7}));
  terminate();
}

TEST_F(FaultTest, KillServerMidReduceMatchesNativeSmallerCluster) {
  // Acceptance scenario: a whole server node dies while a tree reduce is in
  // flight.  The runtime blacklists its devices and re-executes over the
  // survivors; because the dead node was the LAST one, the surviving device
  // ids (and hence partition, fold order, and tree shape) are exactly those
  // of a cluster that never had the node — the results must match bitwise.
  auto clusterOf = [](int servers) {
    docl::DistributedConfig cfg;
    for (int s = 0; s < servers; ++s) {
      cfg.servers.push_back(sim::SystemConfig::teslaS1070(2));
    }
    return cfg;
  };
  auto runReduce = [] {
    Reduce<float> sum("float func(float a, float b) { return a + b; }");
    Vector<float> v(16384);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 0.5f * static_cast<float>(i % 11);  // exact in fp32
    }
    return sum(v);
  };

  docl::initSkelCL(clusterOf(3));
  const float native = runReduce();
  terminate();

  const docl::DistributedConfig four = clusterOf(4);
  docl::initSkelCL(four);
  sim::FaultPlan plan;
  // Each node-3 device survives one command (the input upload) and dies on
  // the next — its reduce step-1 kernel.
  docl::killServer(plan, four, 3, 1);
  setFaultPlan(std::move(plan));
  const float degraded = runReduce();
  EXPECT_EQ(aliveDeviceCount(), 6);
  terminate();

  EXPECT_EQ(std::memcmp(&native, &degraded, sizeof(float)), 0)
      << "native " << native << " vs degraded " << degraded;
}

TEST_F(FaultTest, DeadServerNodeDegradesOntoSurvivingNodes) {
  const docl::DistributedConfig config = docl::laboratorySetup();
  EXPECT_EQ(docl::serverDeviceRange(config, 0), (std::pair<int, int>{0, 3}));
  EXPECT_EQ(docl::serverDeviceRange(config, 2), (std::pair<int, int>{6, 7}));

  docl::initSkelCL(config);
  sim::FaultPlan plan;
  docl::killServer(plan, config, 2, 0);  // node2 (devices 6,7) is down
  setFaultPlan(std::move(plan));

  Map<int> twice("int func(int x) { return 2 * x; }");
  Vector<int> out = twice(Vector<int>(iotaInts(4096)));
  EXPECT_EQ(aliveDeviceCount(), 6);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 2 * static_cast<int>(i));
  }
  terminate();
}

// --- the acceptance scenario: OSEM losing a GPU mid-iteration ----------------

class OsemDegradation : public FaultTest {
 protected:
  static osem::OsemData testData() {
    osem::OsemConfig config;
    config.volume.nx = 16;
    config.volume.ny = 16;
    config.volume.nz = 16;
    config.volume.voxel = 2.0f;
    config.eventsPerSubset = 400;
    config.numSubsets = 2;
    return osem::OsemData::generate(config);
  }

  /// Faulted run: 4 GPUs, device 3 dies on its 4th command — the step-1 map
  /// kernel of the first subset (after the events/f/c uploads).  Device 0's
  /// first kernel additionally fails once transiently, exercising the retry
  /// path in the same run (no data effect: faulted commands never execute).
  static osem::OsemResult runWithDyingGpu(const osem::OsemData& data) {
    setenv("SKELCL_FAULTS", "seed:42;kernel:dev0:count1;kill:dev3:after3", 1);
    init(sim::SystemConfig::teslaS1070(4));
    unsetenv("SKELCL_FAULTS");
    auto result = osem::runOsemSkelCLPreInitialized(data);
    EXPECT_EQ(aliveDeviceCount(), 3);
    terminate();
    return result;
  }
};

TEST_F(OsemDegradation, CompletesBitIdenticalToThreeGpuReference) {
  const osem::OsemData data = testData();

  // Reference A: fault-free 4-GPU reconstruction.
  const osem::OsemResult full = osem::runOsemSkelCL(data, 4);

  // Reference B: the three surviving GPUs from the start.
  init(sim::SystemConfig::teslaS1070(4));
  blacklistDevice(3);
  const osem::OsemResult survivors = osem::runOsemSkelCLPreInitialized(data);
  terminate();

  // Faulted run C: GPU 3 dies inside the first subset's map.
  const osem::OsemResult degraded = runWithDyingGpu(data);

  ASSERT_EQ(degraded.image.size(), survivors.image.size());
  EXPECT_EQ(std::memcmp(degraded.image.data(), survivors.image.data(),
                        degraded.image.size() * sizeof(float)),
            0)
      << "the degraded run must be bit-identical to a native 3-GPU run";
  // and scientifically equivalent to the fault-free reconstruction
  EXPECT_LT(osem::imageNrmse(degraded.image, full.image), 2e-3);
  // recovery costs time: re-uploads + re-execution on fewer devices
  EXPECT_GT(degraded.totalSimSeconds, full.totalSimSeconds);
}

TEST_F(OsemDegradation, FaultEventsAreTracedAndReplayDeterministically) {
  const osem::OsemData data = testData();

  auto tracedRun = [&data] {
    trace::clear();
    trace::enable();
    (void)runWithDyingGpu(data);
    trace::disable();
    return trace::snapshot();
  };
  const auto records = tracedRun();

  int faults = 0, retries = 0, redistributes = 0;
  bool blacklistNamed = false;
  for (const auto& r : records) {
    faults += r.kind == trace::Record::Kind::Fault;
    retries += r.kind == trace::Record::Kind::Retry;
    if (r.kind == trace::Record::Kind::Redistribute) {
      ++redistributes;
      EXPECT_EQ(r.device, 3);
      blacklistNamed = r.name.find("blacklist dev3") != std::string::npos;
    }
  }
  EXPECT_GE(faults, 2) << "the transient fault and the dying kernel";
  EXPECT_EQ(retries, 1) << "the transient fault is retried exactly once";
  EXPECT_EQ(redistributes, 1);
  EXPECT_TRUE(blacklistNamed);

  // Same seed, same program: the event sequence replays identically.
  const auto replay = tracedRun();
  auto signature = [](const std::vector<trace::Record>& rs) {
    std::vector<std::tuple<int, int, std::string>> sig;
    for (const auto& r : rs) sig.emplace_back(static_cast<int>(r.kind), r.device, r.name);
    return sig;
  };
  EXPECT_EQ(signature(records), signature(replay));

  // The chrome trace (written from the replay's records, which disable()
  // keeps) carries the fault-path categories.
  const std::string path = ::testing::TempDir() + "skelcl_fault_trace.json";
  ASSERT_TRUE(trace::writeChromeTrace(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"redistribute\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"retry\""), std::string::npos);
}

}  // namespace
