// Skeleton typing and additional-argument corner cases beyond the main
// semantics suite: mixed element types, scalar extras of every kind,
// reduce with extras, error paths.
#include <gtest/gtest.h>

#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

class TypingTest : public ::testing::Test {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(2)); }
  void TearDown() override { terminate(); }
};

TEST_F(TypingTest, MapFloatToInt) {
  Map<std::int32_t(float)> trunc("int func(float x) { return (int)x; }");
  Vector<float> v({1.9f, -2.9f, 0.5f});
  Vector<std::int32_t> out = trunc(v);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], -2);
  EXPECT_EQ(out[2], 0);
}

TEST_F(TypingTest, MapIntToDouble) {
  Map<double(std::int32_t)> half("double func(int x) { return (double)x / 2.0; }");
  Vector<std::int32_t> v({1, 3, 5});
  Vector<double> out = half(v);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 2.5);
}

TEST_F(TypingTest, ZipMixedElementTypes) {
  Zip<float(std::int32_t, float)> scale(
      "float func(int count, float unit) { return (float)count * unit; }");
  Vector<std::int32_t> counts({2, 3, 4});
  Vector<float> units({0.5f, 1.5f, 2.5f});
  Vector<float> out = scale(counts, units);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 4.5f);
  EXPECT_FLOAT_EQ(out[2], 10.0f);
}

TEST_F(TypingTest, ScalarExtrasOfEveryKind) {
  Map<double(float)> combine(
      "double func(float x, int i, uint u, float f, double d)"
      "{ return (double)x + (double)i + (double)u + (double)f + d; }");
  Vector<float> v({1.0f});
  Vector<double> out =
      combine(v, std::int32_t{-2}, std::uint32_t{3}, 0.5f, 0.25);
  EXPECT_DOUBLE_EQ(out[0], 1.0 - 2.0 + 3.0 + 0.5 + 0.25);
}

TEST_F(TypingTest, BoolAndSizeTScalarsConvert) {
  // size_t and bool extras pass through the arithmetic packing path
  Map<std::int32_t(std::int32_t)> addN("int func(int x, int n) { return x + n; }");
  Vector<std::int32_t> v({10});
  const std::size_t n = 7;
  Vector<std::int32_t> out = addN(v, n);
  EXPECT_EQ(out[0], 17);
}

TEST_F(TypingTest, ReduceWithScalarExtra) {
  // weighted fold: acc + x * w
  Reduce<float> weighted("float func(float acc, float x, float w) { return acc + x * w; }");
  Vector<float> v(10);
  for (std::size_t i = 0; i < 10; ++i) v[i] = 1.0f;
  // first element enters unweighted (it seeds the accumulator), the other
  // nine are scaled: 1 + 9 * 2
  EXPECT_FLOAT_EQ(weighted(v, 2.0f), 1.0f + 9.0f * 2.0f);
}

TEST_F(TypingTest, ReduceRejectsVectorExtras) {
  Reduce<float> bad("float func(float a, float b, __global float* t) { return a + b + t[0]; }");
  Vector<float> v({1.0f, 2.0f});
  Vector<float> table({5.0f});
  table.setDistribution(Distribution::copy());
  EXPECT_THROW(bad(v, table), Error);
}

TEST_F(TypingTest, WrongUserFunctionNameFailsToBuild) {
  Map<float(float)> bad("float notfunc(float x) { return x; }");
  Vector<float> v(4);
  EXPECT_THROW(bad(v), Error);  // generated kernel calls `func`
}

TEST_F(TypingTest, ArityMismatchWithExtrasFailsToBuild) {
  // func takes only x but an extra is passed -> generated call has 2 args
  Map<float(float)> bad("float func(float x) { return x; }");
  Vector<float> v(4);
  EXPECT_THROW(bad(v, 1.0f), ocl::BuildError);
}

TEST_F(TypingTest, MapShorthandEqualsExplicitForm) {
  Map<float> a("float func(float x) { return x * 3.0f; }");
  Map<float(float)> b("float func(float x) { return x * 3.0f; }");
  Vector<float> v({2.0f});
  EXPECT_FLOAT_EQ(a(v)[0], b(v)[0]);
}

TEST_F(TypingTest, OutSizeMismatchRejected) {
  Map<float(float)> id("float func(float x) { return x; }");
  Vector<float> in(8);
  Vector<float> wrong(4);
  EXPECT_THROW(id(out(wrong), in), UsageError);
}

TEST_F(TypingTest, EmptyMapProducesEmptyVector) {
  Map<float(float)> id("float func(float x) { return x; }");
  Vector<float> v(0);
  Vector<float> result = id(v);
  EXPECT_TRUE(result.empty());
}

TEST_F(TypingTest, ToStdVectorRoundTrip) {
  Vector<std::int32_t> v({4, 5, 6});
  const std::vector<std::int32_t> copy = v.toStdVector();
  EXPECT_EQ(copy, (std::vector<std::int32_t>{4, 5, 6}));
}

TEST_F(TypingTest, ScanOfSingleElement) {
  Scan<int> scan("int func(int a, int b) { return a + b; }");
  Vector<int> v({42});
  Vector<int> out = scan(v);
  EXPECT_EQ(out[0], 42);
}

TEST_F(TypingTest, ScanOfEmptyVector) {
  Scan<int> scan("int func(int a, int b) { return a + b; }");
  Vector<int> v(0);
  Vector<int> out = scan(v);
  EXPECT_TRUE(out.empty());
}

TEST_F(TypingTest, ZipWithAliasedInputs) {
  // zip(v, v): both inputs are the same vector (and the same device buffers)
  Zip<float> square("float func(float a, float b) { return a * b; }");
  Vector<float> v({2.0f, 3.0f, 4.0f});
  Vector<float> out = square(v, v);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
  EXPECT_FLOAT_EQ(out[1], 9.0f);
  EXPECT_FLOAT_EQ(out[2], 16.0f);
}

TEST_F(TypingTest, InPlaceZipWithAliasedInputs) {
  // f = f * f, fully in place
  Zip<float> square("float func(float a, float b) { return a * b; }");
  Vector<float> v({2.0f, 3.0f});
  square(out(v), v, v);
  EXPECT_FLOAT_EQ(v[0], 4.0f);
  EXPECT_FLOAT_EQ(v[1], 9.0f);
}

TEST_F(TypingTest, ReduceOnSingleDistributionUsesThatDevice) {
  Reduce<int> sum("int func(int a, int b) { return a + b; }");
  Vector<int> v(100);
  for (std::size_t i = 0; i < 100; ++i) v[i] = 1;
  v.setDistribution(Distribution::single(1));
  resetSimClock();
  EXPECT_EQ(sum(v), 100);
  // exactly one device ran kernels (the uploads + partial download target it)
  EXPECT_EQ(simStats().kernel_launches, 1u);
}

TEST_F(TypingTest, ScanWithWeightedBlockDistribution) {
  Scan<int> scan("int func(int a, int b) { return a + b; }");
  Vector<int> v(100);
  for (std::size_t i = 0; i < 100; ++i) v[i] = 1;
  v.setDistribution(Distribution::block({3.0, 1.0}));
  Vector<int> out = scan(v);
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) + 1) << i;
  }
}

TEST_F(TypingTest, MapWithPreprocessorDefinesInUserSource) {
  Map<float(float)> scaled(
      "#define SCALE 3.0f\n"
      "float func(float x) { return SCALE * x; }");
  Vector<float> v({2.0f});
  EXPECT_FLOAT_EQ(scaled(v)[0], 6.0f);
}

}  // namespace
