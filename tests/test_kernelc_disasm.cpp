// Disassembler tests: stable, readable bytecode dumps (the `kcc -d` tool and
// debugging of generated skeleton programs rely on them).
#include <gtest/gtest.h>

#include "kernelc/disasm.hpp"
#include "kernelc/program.hpp"

using namespace skelcl::kc;

namespace {

std::string dump(const std::string& source, const std::string& fn) {
  const auto program = compileProgram(source);
  const int idx = program->findFunction(fn);
  EXPECT_GE(idx, 0);
  return disassemble(program->functions[static_cast<std::size_t>(idx)]);
}

TEST(KernelcDisasm, SimpleFunctionGolden) {
  const std::string text = dump("int f(int a, int b) { return a + b; }", "f");
  // header + 4 instructions
  EXPECT_NE(text.find("function f (slots=2, frame=0B)"), std::string::npos);
  EXPECT_NE(text.find("load.slot 0"), std::string::npos);
  EXPECT_NE(text.find("load.slot 1"), std::string::npos);
  EXPECT_NE(text.find("add.i"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(KernelcDisasm, KernelHeaderAndFrame) {
  const std::string text =
      dump("__kernel void k(__global float* p) { float tmp[4]; p[0] = tmp[0]; }", "k");
  EXPECT_NE(text.find("kernel k"), std::string::npos);
  EXPECT_NE(text.find("frame=16B"), std::string::npos);
  EXPECT_NE(text.find("lea.frame"), std::string::npos);
}

TEST(KernelcDisasm, JumpTargetsPrinted) {
  const std::string text = dump("int f(int n) { while (n > 0) --n; return n; }", "f");
  EXPECT_NE(text.find("jz "), std::string::npos);
  EXPECT_NE(text.find("jmp "), std::string::npos);
}

TEST(KernelcDisasm, BuiltinCallsNameAndArity) {
  const std::string text = dump("float f(float x) { return sqrt(x); }", "f");
  EXPECT_NE(text.find("call.builtin"), std::string::npos);
  EXPECT_NE(text.find("argc=1"), std::string::npos);
}

TEST(KernelcDisasm, FloatOpsDistinctFromDouble) {
  const std::string f32 = dump("float f(float a) { return a * a; }", "f");
  const std::string f64 = dump("double f(double a) { return a * a; }", "f");
  EXPECT_NE(f32.find("mul.f32"), std::string::npos);
  EXPECT_NE(f64.find("mul.f64"), std::string::npos);
}

TEST(KernelcDisasm, EveryOpcodeHasAName) {
  for (int op = 0; op <= static_cast<int>(Op::Trap); ++op) {
    EXPECT_STRNE(opName(static_cast<Op>(op)), "?") << "opcode " << op;
  }
}

}  // namespace
