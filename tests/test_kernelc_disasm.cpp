// Disassembler tests: stable, readable bytecode dumps (the `kcc -d` tool and
// debugging of generated skeleton programs rely on them).
#include <gtest/gtest.h>

#include "kernelc/disasm.hpp"
#include "kernelc/program.hpp"

using namespace skelcl::kc;

namespace {

// The goldens below document the compiler's naive instruction selection, so
// they compile with the peephole pass off.
std::string dump(const std::string& source, const std::string& fn) {
  const auto program = compileProgram(source, CompileOptions{/*optimize=*/false});
  const int idx = program->findFunction(fn);
  EXPECT_GE(idx, 0);
  return disassemble(program->functions[static_cast<std::size_t>(idx)]);
}

std::string dumpOptimized(const std::string& source, const std::string& fn, bool packed) {
  const auto program = compileProgram(source, CompileOptions{/*optimize=*/true});
  const int idx = program->findFunction(fn);
  EXPECT_GE(idx, 0);
  const FunctionCode& code = program->functions[static_cast<std::size_t>(idx)];
  return packed ? disassemblePacked(code) : disassemble(code);
}

TEST(KernelcDisasm, SimpleFunctionGolden) {
  const std::string text = dump("int f(int a, int b) { return a + b; }", "f");
  // header + 4 instructions
  EXPECT_NE(text.find("function f (slots=2, frame=0B)"), std::string::npos);
  EXPECT_NE(text.find("load.slot 0"), std::string::npos);
  EXPECT_NE(text.find("load.slot 1"), std::string::npos);
  EXPECT_NE(text.find("add.i"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(KernelcDisasm, KernelHeaderAndFrame) {
  const std::string text =
      dump("__kernel void k(__global float* p) { float tmp[4]; p[0] = tmp[0]; }", "k");
  EXPECT_NE(text.find("kernel k"), std::string::npos);
  EXPECT_NE(text.find("frame=16B"), std::string::npos);
  EXPECT_NE(text.find("lea.frame"), std::string::npos);
}

TEST(KernelcDisasm, JumpTargetsPrinted) {
  const std::string text = dump("int f(int n) { while (n > 0) --n; return n; }", "f");
  EXPECT_NE(text.find("jz "), std::string::npos);
  EXPECT_NE(text.find("jmp "), std::string::npos);
}

TEST(KernelcDisasm, BuiltinCallsNameAndArity) {
  const std::string text = dump("float f(float x) { return sqrt(x); }", "f");
  EXPECT_NE(text.find("call.builtin"), std::string::npos);
  EXPECT_NE(text.find("argc=1"), std::string::npos);
}

TEST(KernelcDisasm, FloatOpsDistinctFromDouble) {
  const std::string f32 = dump("float f(float a) { return a * a; }", "f");
  const std::string f64 = dump("double f(double a) { return a * a; }", "f");
  EXPECT_NE(f32.find("mul.f32"), std::string::npos);
  EXPECT_NE(f64.find("mul.f64"), std::string::npos);
}

TEST(KernelcDisasm, EveryOpcodeHasAName) {
  for (int op = 0; op < kOpCount; ++op) {
    EXPECT_STRNE(opName(static_cast<Op>(op)), "?") << "opcode " << op;
  }
}

TEST(KernelcDisasm, SuperinstructionsCarryWeights) {
  // a + b fuses the two operand loads; the weight suffix documents how many
  // naive instructions the fused one retires.
  const std::string text =
      dumpOptimized("int f(int a, int b) { return a + b; }", "f", /*packed=*/false);
  EXPECT_NE(text.find("load.slot2 s0 s1"), std::string::npos);
  EXPECT_NE(text.find(";w=2"), std::string::npos);
}

TEST(KernelcDisasm, PackedDumpShowsHeaderAndPool) {
  const std::string text = dumpOptimized(
      "double f(double x) { return x * 3.25; }", "f", /*packed=*/true);
  EXPECT_NE(text.find("maxstack="), std::string::npos);
  EXPECT_NE(text.find("pool=1"), std::string::npos);
  EXPECT_NE(text.find("push.cf [0]=3.25"), std::string::npos);
}

TEST(KernelcDisasm, PackedDumpFusedBranch) {
  const std::string text = dumpOptimized(
      "int f(int n) { int s = 0; for (int i = 0; i < n; ++i) s = s + i; return s; }",
      "f", /*packed=*/true);
  EXPECT_NE(text.find("cmp.j"), std::string::npos);  // fused compare-and-branch
  EXPECT_NE(text.find("incslot.i"), std::string::npos);
}

}  // namespace
