// The straggler/hang watchdog (docs/ROBUSTNESS.md): commands that exceed
// their deadline are aborted with status WatchdogTimeout and the recovery
// layer *degrades* the device — reduced partition share, escalating to the
// blacklist after kDegradeStrikes — instead of declaring it dead outright.
// Covers: hangs aborted and re-executed with degrade-only trace records, a
// persistent straggler escalating to the blacklist, tolerated slowdowns
// (inside the slack factor) costing only simulated time, the reduced share a
// degraded device receives, and the watchdog-off baseline that just rides
// the slowdown out.
#include <gtest/gtest.h>

#include <vector>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

struct RuntimeGuard {
  explicit RuntimeGuard(sim::SystemConfig config) { init(std::move(config)); }
  ~RuntimeGuard() {
    trace::disable();
    trace::clear();
    terminate();
  }
};

constexpr const char* kTwice = "int func(int x) { return 2 * x; }";

Vector<int> iota(std::size_t n) {
  Vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i);
  return v;
}

void expectDoubled(const Vector<int>& out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 2 * static_cast<int>(i)) << "i=" << i;
  }
}

}  // namespace

TEST(Watchdog, HangIsAbortedAndDeviceDegradedNotBlacklisted) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan;
  plan.hangCommands(1, 1);
  setFaultPlan(std::move(plan));

  trace::enable();
  Map<int> twice(kTwice);
  Vector<int> out = twice(iota(1000));
  trace::disable();
  expectDoubled(out);

  // One strike: degraded, not dead.
  EXPECT_EQ(aliveDeviceCount(), 2);
  EXPECT_EQ(degradeCount(1), 1);
  EXPECT_DOUBLE_EQ(deviceHealth(1), 0.25);
  EXPECT_DOUBLE_EQ(deviceHealth(0), 1.0);

  // The trace shows the degrade and nothing blacklist-shaped.
  int degrades = 0, redistributes = 0;
  for (const auto& r : trace::snapshot()) {
    if (r.kind == trace::Record::Kind::Degrade) {
      ++degrades;
      EXPECT_EQ(r.device, 1);
    }
    redistributes += r.kind == trace::Record::Kind::Redistribute;
  }
  EXPECT_EQ(degrades, 1);
  EXPECT_EQ(redistributes, 0) << "a hang must degrade, not blacklist";
}

TEST(Watchdog, DegradedDeviceGetsReducedPartitionShare) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan;
  plan.hangCommands(1, 1);
  setFaultPlan(std::move(plan));

  Map<int> twice(kTwice);
  expectDoubled(twice(iota(1000)));  // takes the strike on device 1
  ASSERT_DOUBLE_EQ(deviceHealth(1), 0.25);

  // Health folds into unweighted block partitions: 1.0 : 0.25 = 800 : 200.
  Vector<int> out = twice(iota(1000));
  expectDoubled(out);
  EXPECT_EQ(out.impl().partSizeOn(0), 800u);
  EXPECT_EQ(out.impl().partSizeOn(1), 200u);
}

TEST(Watchdog, PersistentStragglerEscalatesToBlacklistAfterThreeStrikes) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan;
  plan.slowDevice(0, 8.0);  // 8x > the default 4x slack: every command aborts
  setFaultPlan(std::move(plan));

  trace::enable();
  Map<int> twice(kTwice);
  // Re-execution inside one skeleton call is enough to accumulate all three
  // strikes: each replan keeps the degraded device until it is blacklisted.
  expectDoubled(twice(iota(1000)));
  trace::disable();

  EXPECT_EQ(aliveDeviceCount(), 1);
  EXPECT_EQ(degradeCount(0), 3);

  int degrades = 0;
  bool blacklisted = false;
  for (const auto& r : trace::snapshot()) {
    degrades += r.kind == trace::Record::Kind::Degrade && r.device == 0;
    if (r.kind == trace::Record::Kind::Redistribute && r.device == 0) blacklisted = true;
  }
  EXPECT_EQ(degrades, 2) << "the third strike escalates instead of degrading";
  EXPECT_TRUE(blacklisted);

  // Later work no longer touches the straggler.
  expectDoubled(twice(iota(512)));
  EXPECT_EQ(aliveDeviceCount(), 1);
}

TEST(Watchdog, ToleratedSlowdownOnlyCostsSimulatedTime) {
  double baseline = 0.0;
  {
    RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
    Map<int> twice(kTwice);
    expectDoubled(twice(iota(2000)));
    finish();
    baseline = simTimeSeconds();
  }
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  sim::FaultPlan plan;
  plan.slowDevice(0, 2.0);  // within the 4x slack: no aborts
  setFaultPlan(std::move(plan));

  Map<int> twice(kTwice);
  expectDoubled(twice(iota(2000)));
  finish();
  EXPECT_GT(simTimeSeconds(), baseline) << "the slowdown must cost simulated time";
  EXPECT_EQ(aliveDeviceCount(), 2);
  EXPECT_EQ(degradeCount(0), 0);
  EXPECT_DOUBLE_EQ(deviceHealth(0), 1.0);
}

TEST(Watchdog, DisabledWatchdogRidesOutTheStraggler) {
  RuntimeGuard rt(sim::SystemConfig::teslaS1070(2));
  setWatchdogEnabled(false);
  sim::FaultPlan plan;
  plan.slowDevice(0, 8.0);
  setFaultPlan(std::move(plan));

  Map<int> twice(kTwice);
  expectDoubled(twice(iota(1000)));
  finish();
  const double slowTime = simTimeSeconds();

  // No aborts, no degrades — the straggler is simply waited for.
  EXPECT_EQ(aliveDeviceCount(), 2);
  EXPECT_EQ(degradeCount(0), 0);
  EXPECT_DOUBLE_EQ(deviceHealth(0), 1.0);
  EXPECT_GT(slowTime, 0.0);

  // Re-enabling takes effect for later plans within the same runtime.
  setWatchdogEnabled(true);
  sim::FaultPlan again;
  again.hangCommands(1, 1);
  setFaultPlan(std::move(again));
  expectDoubled(twice(iota(1000)));
  EXPECT_EQ(degradeCount(1), 1);
}
