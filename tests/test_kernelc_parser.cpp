// Parser unit tests: program structure, precedence, statements, errors.
#include <gtest/gtest.h>

#include "kernelc/diagnostics.hpp"
#include "kernelc/lexer.hpp"
#include "kernelc/parser.hpp"

using namespace skelcl::kc;

namespace {

Program parse(const std::string& src) { return Parser(Lexer(src).run()).run(); }

ExprPtr parseExpr(const std::string& src) {
  return Parser(Lexer(src).run()).parseExpressionOnly();
}

TEST(KernelcParser, EmptyProgram) {
  const Program p = parse("");
  EXPECT_TRUE(p.decls.empty());
}

TEST(KernelcParser, SimpleFunction) {
  const Program p = parse("int add(int a, int b) { return a + b; }");
  ASSERT_EQ(p.decls.size(), 1u);
  const FunctionDecl& fn = *p.decls[0].functionDecl;
  EXPECT_EQ(fn.name, "add");
  EXPECT_FALSE(fn.isKernel);
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].name, "a");
  EXPECT_EQ(fn.params[1].name, "b");
  ASSERT_EQ(fn.body->statements.size(), 1u);
  EXPECT_EQ(fn.body->statements[0]->kind, StmtKind::Return);
}

TEST(KernelcParser, KernelQualifier) {
  const Program p = parse("__kernel void k(__global float* out) { }");
  const FunctionDecl& fn = *p.decls[0].functionDecl;
  EXPECT_TRUE(fn.isKernel);
  EXPECT_EQ(fn.params[0].spec.pointerDepth, 1);
  EXPECT_TRUE(fn.params[0].spec.isGlobal);
}

TEST(KernelcParser, KernelWithoutUnderscores) {
  const Program p = parse("kernel void k(global int* out) { }");
  EXPECT_TRUE(p.decls[0].functionDecl->isKernel);
}

TEST(KernelcParser, VoidParameterList) {
  const Program p = parse("int f(void) { return 1; }");
  EXPECT_TRUE(p.decls[0].functionDecl->params.empty());
}

TEST(KernelcParser, TypedefStruct) {
  const Program p = parse("typedef struct { float x; float y; } Point;");
  ASSERT_EQ(p.decls.size(), 1u);
  const StructDecl& s = *p.decls[0].structDecl;
  EXPECT_EQ(s.name, "Point");
  ASSERT_EQ(s.fields.size(), 2u);
  EXPECT_EQ(s.fields[0].name, "x");
  EXPECT_EQ(s.fields[1].name, "y");
}

TEST(KernelcParser, PlainStructDeclaration) {
  const Program p = parse("struct Pair { int a; int b; };");
  EXPECT_EQ(p.decls[0].structDecl->name, "Pair");
}

TEST(KernelcParser, StructNameUsableAsType) {
  const Program p = parse(
      "typedef struct { float x; } P;\n"
      "float get(P* p) { return p->x; }");
  ASSERT_EQ(p.decls.size(), 2u);
  EXPECT_TRUE(p.decls[1].functionDecl->params[0].spec.isStruct);
  EXPECT_EQ(p.decls[1].functionDecl->params[0].spec.structName, "P");
}

TEST(KernelcParser, PrecedenceMulOverAdd) {
  // a + b * c parses as a + (b * c)
  const ExprPtr e = parseExpr("a + b * c");
  const auto& add = exprAs<Binary>(*e);
  EXPECT_EQ(add.op, BinaryOp::Add);
  const auto& mul = exprAs<Binary>(*add.rhs);
  EXPECT_EQ(mul.op, BinaryOp::Mul);
}

TEST(KernelcParser, PrecedenceShiftBelowAdd) {
  // a << b + c parses as a << (b + c)
  const ExprPtr e = parseExpr("a << b + c");
  const auto& shl = exprAs<Binary>(*e);
  EXPECT_EQ(shl.op, BinaryOp::Shl);
  EXPECT_EQ(exprAs<Binary>(*shl.rhs).op, BinaryOp::Add);
}

TEST(KernelcParser, PrecedenceLogical) {
  // a || b && c parses as a || (b && c)
  const ExprPtr e = parseExpr("a || b && c");
  const auto& lor = exprAs<Binary>(*e);
  EXPECT_EQ(lor.op, BinaryOp::LOr);
  EXPECT_EQ(exprAs<Binary>(*lor.rhs).op, BinaryOp::LAnd);
}

TEST(KernelcParser, PrecedenceBitwiseBetweenLogicalAndEquality) {
  // a == b & c == d parses as (a == b) & (c == d)
  const ExprPtr e = parseExpr("a == b & c == d");
  const auto& band = exprAs<Binary>(*e);
  EXPECT_EQ(band.op, BinaryOp::BitAnd);
  EXPECT_EQ(exprAs<Binary>(*band.lhs).op, BinaryOp::Eq);
  EXPECT_EQ(exprAs<Binary>(*band.rhs).op, BinaryOp::Eq);
}

TEST(KernelcParser, LeftAssociativity) {
  // a - b - c parses as (a - b) - c
  const ExprPtr e = parseExpr("a - b - c");
  const auto& outer = exprAs<Binary>(*e);
  EXPECT_EQ(outer.op, BinaryOp::Sub);
  EXPECT_EQ(exprAs<Binary>(*outer.lhs).op, BinaryOp::Sub);
  EXPECT_EQ(outer.rhs->kind, ExprKind::VarRef);
}

TEST(KernelcParser, AssignmentRightAssociative) {
  // a = b = c parses as a = (b = c)
  const ExprPtr e = parseExpr("a = b = c");
  const auto& outer = exprAs<Assign>(*e);
  EXPECT_EQ(outer.rhs->kind, ExprKind::Assign);
}

TEST(KernelcParser, CompoundAssignment) {
  const ExprPtr e = parseExpr("a += b");
  const auto& assign = exprAs<Assign>(*e);
  EXPECT_TRUE(assign.isCompound);
  EXPECT_EQ(assign.compoundOp, BinaryOp::Add);
}

TEST(KernelcParser, TernaryExpression) {
  const ExprPtr e = parseExpr("a ? b : c");
  const auto& t = exprAs<Ternary>(*e);
  EXPECT_EQ(t.cond->kind, ExprKind::VarRef);
  EXPECT_EQ(t.thenExpr->kind, ExprKind::VarRef);
}

TEST(KernelcParser, CallWithArguments) {
  const ExprPtr e = parseExpr("f(1, x, g())");
  const auto& call = exprAs<Call>(*e);
  EXPECT_EQ(call.name, "f");
  ASSERT_EQ(call.args.size(), 3u);
  EXPECT_EQ(call.args[2]->kind, ExprKind::Call);
}

TEST(KernelcParser, ChainedPostfix) {
  // a[i].x parses as Member(Index(a, i), x)
  const ExprPtr e = parseExpr("a[i].x");
  const auto& m = exprAs<Member>(*e);
  EXPECT_FALSE(m.isArrow);
  EXPECT_EQ(m.field, "x");
  EXPECT_EQ(m.base->kind, ExprKind::Index);
}

TEST(KernelcParser, ArrowMember) {
  const ExprPtr e = parseExpr("p->len");
  EXPECT_TRUE(exprAs<Member>(*e).isArrow);
}

TEST(KernelcParser, UnaryChain) {
  const ExprPtr e = parseExpr("-!~x");
  const auto& neg = exprAs<Unary>(*e);
  EXPECT_EQ(neg.op, UnaryOp::Minus);
  EXPECT_EQ(exprAs<Unary>(*neg.operand).op, UnaryOp::Not);
}

TEST(KernelcParser, DerefVsMultiply) {
  const ExprPtr deref = parseExpr("*p");
  EXPECT_EQ(exprAs<Unary>(*deref).op, UnaryOp::Deref);
  const ExprPtr mul = parseExpr("a * b");
  EXPECT_EQ(exprAs<Binary>(*mul).op, BinaryOp::Mul);
}

TEST(KernelcParser, CastExpression) {
  const ExprPtr e = parseExpr("(float)x");
  const auto& cast = exprAs<Cast>(*e);
  EXPECT_EQ(cast.target.scalar, Scalar::Float);
  EXPECT_FALSE(cast.isImplicit);
}

TEST(KernelcParser, ParenthesizedExpressionIsNotACast) {
  const ExprPtr e = parseExpr("(x) + 1");
  EXPECT_EQ(exprAs<Binary>(*e).op, BinaryOp::Add);
}

TEST(KernelcParser, SizeofType) {
  const ExprPtr e = parseExpr("sizeof(float)");
  EXPECT_EQ(e->kind, ExprKind::SizeofType);
}

TEST(KernelcParser, PreAndPostIncrement) {
  EXPECT_EQ(exprAs<Unary>(*parseExpr("++i")).op, UnaryOp::PreInc);
  EXPECT_EQ(exprAs<Unary>(*parseExpr("i++")).op, UnaryOp::PostInc);
  EXPECT_EQ(exprAs<Unary>(*parseExpr("--i")).op, UnaryOp::PreDec);
  EXPECT_EQ(exprAs<Unary>(*parseExpr("i--")).op, UnaryOp::PostDec);
}

TEST(KernelcParser, StatementKinds) {
  const Program p = parse(R"(
    void f(int n) {
      int i = 0;
      if (n > 0) { i = 1; } else i = 2;
      while (i < n) ++i;
      do { --i; } while (i > 0);
      for (int j = 0; j < n; ++j) { if (j == 2) break; else continue; }
      ;
      return;
    })");
  const auto& stmts = p.decls[0].functionDecl->body->statements;
  ASSERT_EQ(stmts.size(), 7u);
  EXPECT_EQ(stmts[0]->kind, StmtKind::Decl);
  EXPECT_EQ(stmts[1]->kind, StmtKind::If);
  EXPECT_EQ(stmts[2]->kind, StmtKind::While);
  EXPECT_EQ(stmts[3]->kind, StmtKind::DoWhile);
  EXPECT_EQ(stmts[4]->kind, StmtKind::For);
  EXPECT_EQ(stmts[5]->kind, StmtKind::Empty);
  EXPECT_EQ(stmts[6]->kind, StmtKind::Return);
}

TEST(KernelcParser, MultipleDeclarators) {
  const Program p = parse("void f() { float a = 1.0f, b, c[4]; }");
  const auto& decl = static_cast<const DeclStmt&>(*p.decls[0].functionDecl->body->statements[0]);
  ASSERT_EQ(decl.vars.size(), 3u);
  EXPECT_NE(decl.vars[0].init, nullptr);
  EXPECT_EQ(decl.vars[1].init, nullptr);
  EXPECT_EQ(decl.vars[2].arraySize, 4);
}

TEST(KernelcParser, ForWithEmptyClauses) {
  const Program p = parse("void f() { for (;;) { break; } }");
  const auto& forStmt = static_cast<const ForStmt&>(*p.decls[0].functionDecl->body->statements[0]);
  EXPECT_EQ(forStmt.init->kind, StmtKind::Empty);
  EXPECT_EQ(forStmt.cond, nullptr);
  EXPECT_EQ(forStmt.step, nullptr);
}

// --- error cases ---

TEST(KernelcParser, MissingSemicolonFails) {
  EXPECT_THROW(parse("void f() { int x = 1 }"), CompileError);
}

TEST(KernelcParser, MissingParenFails) {
  EXPECT_THROW(parse("void f( { }"), CompileError);
}

TEST(KernelcParser, UnterminatedBlockFails) {
  EXPECT_THROW(parse("void f() { if (1) {"), CompileError);
}

TEST(KernelcParser, GarbageTopLevelFails) {
  EXPECT_THROW(parse("42;"), CompileError);
}

TEST(KernelcParser, MissingTernaryColonFails) {
  EXPECT_THROW(parseExpr("a ? b"), CompileError);
}

TEST(KernelcParser, TrailingTokensAfterExpressionFail) {
  EXPECT_THROW(parseExpr("a b"), CompileError);
}

TEST(KernelcParser, ArraySizeMustBeIntLiteral) {
  EXPECT_THROW(parse("void f() { float a[n]; }"), CompileError);
}

}  // namespace
