// Tests for the CUDA-style shim over the simulated devices.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cuda/scuda.hpp"

using namespace skelcl;
using namespace skelcl::scuda;

namespace {

const char* kSaxpyModule =
    "__kernel void saxpy(__global float* x, __global float* y, float a, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) y[i] = a * x[i] + y[i];"
    "}";

Runtime makeRuntime(int gpus) {
  return Runtime(sim::SystemConfig::teslaS1070(gpus), {kSaxpyModule});
}

TEST(Scuda, DeviceEnumerationAndSelection) {
  Runtime rt = makeRuntime(4);
  EXPECT_EQ(rt.deviceCount(), 4);
  rt.setDevice(2);
  EXPECT_EQ(rt.currentDevice(), 2);
  EXPECT_THROW(rt.setDevice(4), UsageError);
}

TEST(Scuda, MallocMemcpyRoundTrip) {
  Runtime rt = makeRuntime(1);
  std::vector<float> in(256);
  std::iota(in.begin(), in.end(), 1.0f);
  const DevPtr d = rt.malloc(in.size() * sizeof(float));
  rt.memcpy(d, in.data(), in.size() * sizeof(float));
  std::vector<float> out(256, 0.0f);
  rt.memcpy(out.data(), d, out.size() * sizeof(float));
  EXPECT_EQ(in, out);
  rt.free(d);
}

TEST(Scuda, PointerOffsetArithmetic) {
  Runtime rt = makeRuntime(1);
  const DevPtr base = rt.malloc(8 * sizeof(int));
  std::vector<int> zeros(8, 0);
  rt.memcpy(base, zeros.data(), 8 * sizeof(int));
  const int v = 7;
  rt.memcpy(base + 5 * sizeof(int), &v, sizeof(int));
  std::vector<int> out(8);
  rt.memcpy(out.data(), base, 8 * sizeof(int));
  EXPECT_EQ(out[5], 7);
  EXPECT_EQ(out[4], 0);
}

TEST(Scuda, DoubleFreeRejected) {
  Runtime rt = makeRuntime(1);
  const DevPtr d = rt.malloc(64);
  rt.free(d);
  EXPECT_THROW(rt.free(d), UsageError);
}

TEST(Scuda, KernelLaunch) {
  Runtime rt = makeRuntime(1);
  const int n = 512;
  std::vector<float> x(n), y(n, 1.0f);
  std::iota(x.begin(), x.end(), 0.0f);
  const DevPtr dx = rt.malloc(n * sizeof(float));
  const DevPtr dy = rt.malloc(n * sizeof(float));
  rt.memcpy(dx, x.data(), n * sizeof(float));
  rt.memcpy(dy, y.data(), n * sizeof(float));

  KernelHandle saxpy = rt.kernel("saxpy");
  rt.launch(saxpy, n, dx, dy, 3.0f, n);
  rt.synchronize();

  rt.memcpy(y.data(), dy, n * sizeof(float));
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(y[static_cast<size_t>(i)], 3.0f * i + 1.0f);
}

TEST(Scuda, UnknownKernelRejected) {
  Runtime rt = makeRuntime(1);
  EXPECT_THROW(rt.kernel("nope"), UsageError);
}

TEST(Scuda, PeerCopyBetweenDevices) {
  Runtime rt = makeRuntime(2);
  std::vector<int> data = {1, 2, 3, 4};
  rt.setDevice(0);
  const DevPtr d0 = rt.malloc(4 * sizeof(int));
  rt.memcpy(d0, data.data(), 4 * sizeof(int));
  rt.setDevice(1);
  const DevPtr d1 = rt.malloc(4 * sizeof(int));
  rt.memcpyPeer(d1, d0, 4 * sizeof(int));
  std::vector<int> out(4, 0);
  rt.memcpy(out.data(), d1, 4 * sizeof(int));
  EXPECT_EQ(out, data);
}

TEST(Scuda, Memset) {
  Runtime rt = makeRuntime(1);
  const DevPtr d = rt.malloc(16);
  rt.memset(d, 0, 16);
  std::vector<char> out(16, 'x');
  rt.memcpy(out.data(), d, 16);
  for (char c : out) EXPECT_EQ(c, 0);
}

TEST(Scuda, NoRuntimeCompilationCost) {
  // Modules compile in the Runtime constructor and the clock is then reset:
  // at first use the host clock starts at zero, unlike the OpenCL path.
  Runtime rt = makeRuntime(1);
  EXPECT_DOUBLE_EQ(rt.system().hostNow(), 0.0);
}

TEST(Scuda, AllocationOnCurrentDevice) {
  Runtime rt = makeRuntime(2);
  rt.setDevice(1);
  const DevPtr d = rt.malloc(64);
  EXPECT_EQ(d.device, 1);
  EXPECT_EQ(rt.platform().device(1).memoryAllocated(), 64u);
  EXPECT_EQ(rt.platform().device(0).memoryAllocated(), 0u);
}

TEST(Scuda, LaunchBufferWithOffsetRejected) {
  Runtime rt = makeRuntime(1);
  const DevPtr d = rt.malloc(64);
  KernelHandle saxpy = rt.kernel("saxpy");
  EXPECT_THROW(rt.launch(saxpy, 1, d + 4, d, 1.0f, 1), UsageError);
}

}  // namespace
