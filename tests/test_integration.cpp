// Cross-module integration tests: every distribution transition with data
// integrity, longer skeleton pipelines, and runtime lifecycle edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/detail/runtime.hpp"
#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

// ---------------------------------------------------------------------------
// Distribution transition matrix: data must survive every transition, on
// every device count, with device-side modifications in between.
// ---------------------------------------------------------------------------

Distribution makeDist(int kind) {
  switch (kind) {
    case 0: return Distribution::single(0);
    case 1: return Distribution::single(1);
    case 2: return Distribution::block();
    default: return Distribution::copy();
  }
}

const char* distName(int kind) {
  switch (kind) {
    case 0: return "single0";
    case 1: return "single1";
    case 2: return "block";
    default: return "copy";
  }
}

class DistTransition : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(std::get<2>(GetParam()))); }
  void TearDown() override { terminate(); }
};

std::string transitionName(const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  return std::string(distName(std::get<0>(info.param))) + "_to_" +
         distName(std::get<1>(info.param)) + "_gpus" +
         std::to_string(std::get<2>(info.param));
}

TEST_P(DistTransition, DataSurvivesTransition) {
  const int from = std::get<0>(GetParam());
  const int to = std::get<1>(GetParam());
  const int gpus = std::get<2>(GetParam());
  if ((from == 1 || to == 1) && gpus < 2) GTEST_SKIP() << "needs 2 devices";

  const std::size_t n = 257;  // awkward size: uneven parts
  Vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i) * 0.5f;

  v.setDistribution(makeDist(from));
  v.impl().ensureOnDevices();
  v.setDistribution(makeDist(to));
  v.impl().ensureOnDevices();

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(v[i], static_cast<float>(i) * 0.5f) << "element " << i;
  }
}

TEST_P(DistTransition, SkeletonRunsAfterTransition) {
  const int from = std::get<0>(GetParam());
  const int to = std::get<1>(GetParam());
  const int gpus = std::get<2>(GetParam());
  if ((from == 1 || to == 1) && gpus < 2) GTEST_SKIP() << "needs 2 devices";

  Map<float(float)> twice("float func(float x) { return 2.0f * x; }");
  const std::size_t n = 100;
  Vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(i);

  v.setDistribution(makeDist(from));
  v.impl().ensureOnDevices();
  v.setDistribution(makeDist(to));

  Vector<float> out = twice(v);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out[i], 2.0f * static_cast<float>(i)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransitions, DistTransition,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4),
                                            ::testing::Values(1, 2, 4)),
                         &transitionName);

// ---------------------------------------------------------------------------
// Pipelines
// ---------------------------------------------------------------------------

class Pipeline : public ::testing::Test {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(4)); }
  void TearDown() override { terminate(); }
};

TEST_F(Pipeline, MapZipReduceScanChain) {
  // out = scan(+, zip(*, map(+1, a), b)); total = reduce(+, out)
  Map<float(float)> inc("float func(float x) { return x + 1.0f; }");
  Zip<float> mul("float func(float a, float b) { return a * b; }");
  Scan<float> prefix("float func(float a, float b) { return a + b; }");
  Reduce<float> sum("float func(float a, float b) { return a + b; }");

  const std::size_t n = 512;
  Vector<float> a(n);
  Vector<float> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i % 3);
    b[i] = 2.0f;
  }

  Vector<float> result = prefix(mul(inc(a), b));
  const float total = sum(result);

  // reference
  std::vector<float> expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = (static_cast<float>(i % 3) + 1.0f) * 2.0f;
  }
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  double expectTotal = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(result[i], expect[i]) << i;
    expectTotal += expect[i];
  }
  EXPECT_NEAR(total, expectTotal, expectTotal * 1e-5);
}

TEST_F(Pipeline, IterativeUpdateKeepsDataOnDevice) {
  // Jacobi-style iteration: after the first upload, only the final download
  // should touch the host.
  Map<float(float)> relax("float func(float x) { return 0.5f * x + 1.0f; }");
  const std::size_t n = 4096;
  Vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 10.0f;

  relax(v);  // warm-up compile (not part of the transfer accounting below)
  finish();
  v.dataOnHostModified();
  resetSimClock();

  Vector<float> current = v;
  for (int iter = 0; iter < 10; ++iter) current = relax(current);
  const auto transfersBeforeRead = simStats().transfers;
  const float converged = current[0];
  const auto transfersAfterRead = simStats().transfers;

  EXPECT_EQ(transfersBeforeRead, 4u);                    // the single upload (4 parts)
  EXPECT_EQ(transfersAfterRead - transfersBeforeRead, 4u);  // the single download
  EXPECT_NEAR(converged, 2.0f + (10.0f - 2.0f) * std::pow(0.5f, 10.0f), 1e-3);
}

TEST_F(Pipeline, ReduceOfScanEqualsTriangularSum) {
  Scan<int> prefix("int func(int a, int b) { return a + b; }");
  Reduce<int> sum("int func(int a, int b) { return a + b; }");
  const std::size_t n = 100;
  Vector<int> ones(n);
  for (std::size_t i = 0; i < n; ++i) ones[i] = 1;
  // scan(ones) = [1..n]; reduce = n(n+1)/2
  EXPECT_EQ(sum(prefix(ones)), static_cast<int>(n * (n + 1) / 2));
}

// ---------------------------------------------------------------------------
// Runtime lifecycle
// ---------------------------------------------------------------------------

TEST(Lifecycle, InitTwiceRejected) {
  init(sim::SystemConfig::teslaS1070(1));
  EXPECT_THROW(init(sim::SystemConfig::teslaS1070(1)), UsageError);
  terminate();
}

TEST(Lifecycle, UseBeforeInitRejected) {
  EXPECT_THROW(deviceCount(), UsageError);
  Vector<float> v(4);  // vectors can be created (host-only state)...
  v[0] = 1.0f;
  EXPECT_FLOAT_EQ(v[0], 1.0f);
  v.setDistribution(Distribution::block());
  EXPECT_THROW(v.impl().ensureOnDevices(), UsageError);  // ...but not distributed
}

TEST(Lifecycle, VectorMayOutliveTerminate) {
  Vector<float>* leaked = nullptr;
  init(sim::SystemConfig::teslaS1070(2));
  {
    leaked = new Vector<float>(64);
    (*leaked)[0] = 5.0f;
    leaked->setDistribution(Distribution::block());
    leaked->impl().ensureOnDevices();
  }
  terminate();
  // destroying the vector after terminate must be safe (no dangling device)
  delete leaked;
  SUCCEED();
}

TEST(Lifecycle, ReinitAfterTerminateWorks) {
  for (int round = 0; round < 3; ++round) {
    init(sim::SystemConfig::teslaS1070(round + 1));
    Map<float(float)> inc("float func(float x) { return x + 1.0f; }");
    Vector<float> v(16);
    Vector<float> out = inc(v);
    EXPECT_FLOAT_EQ(out[3], 1.0f);
    terminate();
  }
}

}  // namespace
