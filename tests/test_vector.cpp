// Tests for skelcl::Vector: lazy coherence, implicit transfers, distribution
// changes including the copy-distribution combine semantics (paper II-B,
// III-A).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "core/detail/runtime.hpp"
#include "core/skelcl.hpp"

using namespace skelcl;

namespace {

class VectorTest : public ::testing::Test {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(4)); }
  void TearDown() override { terminate(); }

  static std::uint64_t transferCount() { return simStats().transfers; }
};

TEST_F(VectorTest, ConstructionZeroInitialized) {
  Vector<float> v(10);
  EXPECT_EQ(v.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(v[i], 0.0f);
}

TEST_F(VectorTest, ConstructionFromData) {
  Vector<int> v({1, 2, 3});
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
}

TEST_F(VectorTest, HostAccessBeforeDistributionNeedsNoTransfers) {
  Vector<float> v(100);
  v[0] = 42.0f;
  EXPECT_FLOAT_EQ(v[0], 42.0f);
  EXPECT_EQ(transferCount(), 0u);
}

TEST_F(VectorTest, SetDistributionAloneIsLazy) {
  // Setting a distribution must not move any data (paper: transfers are
  // deferred as long as possible).
  Vector<float> v(1000);
  v.setDistribution(Distribution::block());
  EXPECT_EQ(transferCount(), 0u);
  v.setDistribution(Distribution::copy());
  EXPECT_EQ(transferCount(), 0u);
}

TEST_F(VectorTest, EnsureOnDevicesUploadsBlockParts) {
  Vector<float> v(1000);
  std::iota(v.begin(), v.end(), 0.0f);
  v.setDistribution(Distribution::block());
  const auto& parts = v.impl().ensureOnDevices();
  ASSERT_EQ(parts.size(), 4u);  // 4 GPUs
  EXPECT_EQ(parts[0].size, 250u);
  EXPECT_EQ(parts[3].offset, 750u);
  EXPECT_EQ(transferCount(), 4u);  // one upload per part
  EXPECT_TRUE(v.impl().devicesValid());
  EXPECT_TRUE(v.impl().hostValid());  // uploads do not invalidate the host
}

TEST_F(VectorTest, RepeatedEnsureDoesNotReupload) {
  Vector<float> v(1000);
  v.setDistribution(Distribution::block());
  v.impl().ensureOnDevices();
  const auto before = transferCount();
  v.impl().ensureOnDevices();
  EXPECT_EQ(transferCount(), before);
}

TEST_F(VectorTest, HostWriteInvalidatesDevices) {
  Vector<float> v(100);
  v.setDistribution(Distribution::block());
  v.impl().ensureOnDevices();
  v[5] = 7.0f;  // non-const access marks device copies stale
  EXPECT_FALSE(v.impl().devicesValid());
  const auto before = transferCount();
  v.impl().ensureOnDevices();  // must re-upload
  EXPECT_GT(transferCount(), before);
}

TEST_F(VectorTest, ConstHostReadKeepsDevicesValid) {
  Vector<float> v(100);
  v.setDistribution(Distribution::block());
  v.impl().ensureOnDevices();
  const Vector<float>& cv = v;
  (void)cv[3];
  EXPECT_TRUE(v.impl().devicesValid());
}

TEST_F(VectorTest, SingleDistributionUsesOneDevice) {
  Vector<float> v(64);
  v.setDistribution(Distribution::single(2));
  const auto& parts = v.impl().ensureOnDevices();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].device, 2);
  EXPECT_EQ(parts[0].size, 64u);
}

TEST_F(VectorTest, SingleDefaultsToFirstDevice) {
  // "the first GPU if not specified otherwise" (paper III-A)
  Vector<float> v(64);
  v.setDistribution(Distribution::single());
  EXPECT_EQ(v.impl().ensureOnDevices()[0].device, 0);
}

TEST_F(VectorTest, CopyDistributionReplicates) {
  Vector<float> v(64);
  v.setDistribution(Distribution::copy());
  const auto& parts = v.impl().ensureOnDevices();
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& p : parts) EXPECT_EQ(p.size, 64u);
}

TEST_F(VectorTest, RedistributionMovesDataThroughHost) {
  Vector<float> v(400);
  std::iota(v.begin(), v.end(), 0.0f);
  v.setDistribution(Distribution::single(1));
  v.impl().ensureOnDevices();
  v.setDistribution(Distribution::block());
  v.impl().ensureOnDevices();
  // data must survive the redistribution
  for (std::size_t i = 0; i < 400; ++i) EXPECT_FLOAT_EQ(v[i], static_cast<float>(i));
}

TEST_F(VectorTest, CopyWithoutCombineKeepsFirstDeviceVersion) {
  Vector<float> v(16);
  v.setDistribution(Distribution::copy());
  const auto& parts = v.impl().ensureOnDevices();
  // simulate divergent device modifications: poke device memories directly
  for (std::size_t d = 0; d < parts.size(); ++d) {
    float val = static_cast<float>(d + 1);
    for (std::size_t i = 0; i < 16; ++i) {
      std::memcpy(parts[d].buffer->data() + i * sizeof(float), &val, sizeof(float));
    }
  }
  v.dataOnDevicesModified();
  // Paper III-A: without a combine function, the first device's copy wins.
  EXPECT_FLOAT_EQ(v[0], 1.0f);
  EXPECT_FLOAT_EQ(v[15], 1.0f);
}

TEST_F(VectorTest, CopyWithCombineFoldsAllVersions) {
  Vector<float> v(16);
  v.setDistribution(Distribution::copy("float func(float a, float b) { return a + b; }"));
  const auto& parts = v.impl().ensureOnDevices();
  for (std::size_t d = 0; d < parts.size(); ++d) {
    float val = static_cast<float>(d + 1);
    for (std::size_t i = 0; i < 16; ++i) {
      std::memcpy(parts[d].buffer->data() + i * sizeof(float), &val, sizeof(float));
    }
  }
  v.dataOnDevicesModified();
  // combine(add) over versions 1, 2, 3, 4 = 10
  EXPECT_FLOAT_EQ(v[0], 10.0f);
  EXPECT_FLOAT_EQ(v[15], 10.0f);
}

TEST_F(VectorTest, CombineHappensOnRedistributionToBlock) {
  // The Listing 3 pattern: error image c is copy(add)-distributed, modified
  // on the devices, then switched to block distribution.
  Vector<int> c(8);
  c.setDistribution(Distribution::copy("int func(int a, int b) { return a + b; }"));
  const auto& parts = c.impl().ensureOnDevices();
  for (std::size_t d = 0; d < parts.size(); ++d) {
    for (std::size_t i = 0; i < 8; ++i) {
      const int val = static_cast<int>(d) + 1;
      std::memcpy(parts[d].buffer->data() + i * sizeof(int), &val, sizeof(int));
    }
  }
  c.dataOnDevicesModified();
  c.setDistribution(Distribution::block());
  c.impl().ensureOnDevices();
  EXPECT_EQ(c[0], 10);
  EXPECT_EQ(c[7], 10);
}

TEST_F(VectorTest, BlockWeightsProportionalPartition) {
  Vector<float> v(100);
  v.setDistribution(Distribution::block({3.0, 1.0, 0.0, 0.0}));
  const auto& parts = v.impl().ensureOnDevices();
  // devices with weight zero are excluded from the partition entirely
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].size, 75u);
  EXPECT_EQ(parts[1].size, 25u);
  EXPECT_EQ(v.impl().partSizeOn(2), 0u);
  EXPECT_EQ(v.impl().partSizeOn(3), 0u);
}

TEST_F(VectorTest, PartitionSumsExactlyToCount) {
  // Largest-remainder apportionment: no elements lost for awkward sizes.
  for (std::size_t n : {1u, 2u, 3u, 5u, 7u, 97u, 1001u}) {
    Vector<float> v(n);
    v.setDistribution(Distribution::block());
    std::size_t total = 0;
    for (const auto& p : v.impl().plannedPartition()) total += p.size;
    EXPECT_EQ(total, n) << "n=" << n;
  }
}

TEST_F(VectorTest, SizesTokenReportsPartSizes) {
  Vector<float> v(1000);
  v.setDistribution(Distribution::block());
  EXPECT_EQ(v.impl().partSizeOn(0), 250u);
  EXPECT_EQ(v.impl().partSizeOn(3), 250u);
  v.setDistribution(Distribution::single(1));
  EXPECT_EQ(v.impl().partSizeOn(0), 0u);
  EXPECT_EQ(v.impl().partSizeOn(1), 1000u);
}

TEST_F(VectorTest, EmptyVectorPartitionIsAllEmpty) {
  Vector<float> v(0);
  v.setDistribution(Distribution::block());
  const auto& parts = v.impl().ensureOnDevices();
  for (const auto& p : parts) {
    EXPECT_EQ(p.size, 0u);
    EXPECT_EQ(p.buffer, nullptr);
  }
}

TEST_F(VectorTest, DistributionCompareSemantics) {
  EXPECT_TRUE(Distribution::block() == Distribution::block());
  EXPECT_FALSE(Distribution::block() == Distribution::copy());
  EXPECT_TRUE(Distribution::single(1) == Distribution::single(1));
  EXPECT_FALSE(Distribution::single(0) == Distribution::single(1));
  // Copy-with-combine downloads differently from plain copy (host fold vs
  // first-replica-wins), so the two must not compare equal.
  EXPECT_FALSE(Distribution::copy() == Distribution::copy("int func(int a,int b){return a;}"));
  EXPECT_TRUE(Distribution::copy("int func(int a,int b){return a;}") ==
              Distribution::copy("int func(int a,int b){return a;}"));
  EXPECT_FALSE(Distribution::copy("int func(int a,int b){return a;}") ==
               Distribution::copy("int func(int a,int b){return b;}"));
  EXPECT_TRUE(Distribution::copy() == Distribution::copy());
}

TEST_F(VectorTest, UnsetDistributionPartitionThrows) {
  Vector<float> v(10);
  EXPECT_THROW(v.impl().plannedPartition(), UsageError);
}

TEST_F(VectorTest, CopyWithCombineFoldsDoubleElements) {
  Vector<double> v(4);
  v.setDistribution(
      Distribution::copy("double func(double a, double b) { return a + b; }"));
  const auto& parts = v.impl().ensureOnDevices();
  for (std::size_t d = 0; d < parts.size(); ++d) {
    const double val = 0.25 * static_cast<double>(d + 1);
    for (std::size_t i = 0; i < 4; ++i) {
      std::memcpy(parts[d].buffer->data() + i * sizeof(double), &val, sizeof(double));
    }
  }
  v.dataOnDevicesModified();
  EXPECT_DOUBLE_EQ(v[0], 0.25 * (1 + 2 + 3 + 4));
}

TEST_F(VectorTest, VectorsShareDataOnCopy) {
  Vector<float> a({1.0f, 2.0f});
  Vector<float> b = a;
  b[0] = 9.0f;
  EXPECT_FLOAT_EQ(a[0], 9.0f);  // handle semantics
}

}  // namespace
