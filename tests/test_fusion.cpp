// Fused skeleton pipelines: correctness against unfused execution across
// device counts and distributions, extra-argument merging, fallback
// triggers, trace semantics — plus regression tests for the three codegen /
// runtime bugs fixed alongside the fusion work (64-bit scalar extras, stale
// partition weights, conflicting extra-argument typedefs).
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "core/detail/trace.hpp"
#include "core/skelcl.hpp"
#include "sched/scheduler.hpp"
#include "sim/rng.hpp"

using namespace skelcl;

namespace {

constexpr const char* kSquare = "float func(float x) { return x * x + 1.0f; }";
constexpr const char* kHalf = "float func(float x) { return x * 0.5f; }";
constexpr const char* kAdd2 = "float func(float a, float b) { return a + b; }";

Vector<float> randomVector(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  Vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(rng.uniform(-8.0, 8.0));
  return v;
}

void expectBitIdentical(const Vector<float>& a, const Vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float x = a[i];
    const float y = b[i];
    ASSERT_EQ(std::memcmp(&x, &y, sizeof(float)), 0) << "element " << i;
  }
}

// --- fused vs unfused, parameterized over device count ----------------------

class FusionP : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { init(sim::SystemConfig::teslaS1070(GetParam())); }
  void TearDown() override { terminate(); }
};

INSTANTIATE_TEST_SUITE_P(Devices, FusionP, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "gpus" + std::to_string(info.param);
                         });

TEST_P(FusionP, MapMapMatchesUnfusedOnBlock) {
  Vector<float> in = randomVector(1001, 7);

  Pipeline<float> fused;
  fused.map(kSquare).map(kHalf);
  Vector<float> a = fused(in);
  EXPECT_TRUE(fused.lastRunFused());

  Pipeline<float> unfused;
  unfused.map(kSquare).map(kHalf).forceUnfused();
  Vector<float> b = unfused(in);
  EXPECT_FALSE(unfused.lastRunFused());

  expectBitIdentical(a, b);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], (in[i] * in[i] + 1.0f) * 0.5f) << i;
  }
}

TEST_P(FusionP, MapZipMatchesSeparateSkeletons) {
  Vector<float> in = randomVector(800, 11);
  Vector<float> ys = randomVector(800, 13);

  Pipeline<float> p;
  p.map(kSquare).zip(ys, kAdd2);
  Vector<float> a = p(in);
  EXPECT_TRUE(p.lastRunFused());

  Map<float> square(kSquare);
  Zip<float> add(kAdd2);
  Vector<float> b = add(square(in), ys);

  expectBitIdentical(a, b);
}

TEST_P(FusionP, FusedChainOnCopyDistribution) {
  Vector<float> in = randomVector(300, 17);
  in.setDistribution(Distribution::copy());

  Pipeline<float> fused;
  fused.map(kSquare).map(kHalf);
  Vector<float> a = fused(in);
  EXPECT_TRUE(fused.lastRunFused());

  Pipeline<float> unfused;
  unfused.map(kSquare).map(kHalf).forceUnfused();
  Vector<float> b = unfused(in);

  expectBitIdentical(a, b);
}

TEST_P(FusionP, FusedChainOnWeightedBlockDistribution) {
  const int gpus = GetParam();
  std::vector<double> weights(static_cast<std::size_t>(gpus));
  double total = 0.0;
  for (int d = 0; d < gpus; ++d) total += (weights[static_cast<std::size_t>(d)] = d + 1.0);
  for (double& w : weights) w /= total;

  Vector<float> in = randomVector(1234, 19);
  in.setDistribution(Distribution::block(weights));
  Vector<float> ys = randomVector(1234, 23);

  Pipeline<float> fused;
  fused.map(kSquare).zip(ys, kAdd2);
  Vector<float> a = fused(in);
  EXPECT_TRUE(fused.lastRunFused());

  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], in[i] * in[i] + 1.0f + ys[i]) << i;
  }
}

TEST_P(FusionP, MapZipReduceMatchesSeparateSkeletons) {
  Vector<float> in = randomVector(5000, 29);
  Vector<float> ys = randomVector(5000, 31);

  Pipeline<float> p;
  p.map(kHalf).zip(ys, "float func(float a, float b) { return a * b; }");
  const float fusedResult = p.reduce(kAdd2, in);
  EXPECT_TRUE(p.lastRunFused());

  Map<float> half(kHalf);
  Zip<float> mul("float func(float a, float b) { return a * b; }");
  Reduce<float> sum(kAdd2);
  const float reference = sum(mul(half(in), ys));

  EXPECT_EQ(std::memcmp(&fusedResult, &reference, sizeof(float)), 0)
      << fusedResult << " vs " << reference;
}

TEST_P(FusionP, ExtraArgumentsMergeAcrossStages) {
  Vector<float> in = randomVector(512, 37);
  Vector<float> ys = randomVector(512, 41);
  Vector<float> table(4);
  for (std::size_t i = 0; i < table.size(); ++i) table[i] = static_cast<float>(i) + 0.25f;
  table.setDistribution(Distribution::copy());

  Pipeline<float> p;
  p.map("float func(float x, float s) { return x * s; }", 2.5f)
      .zip(ys, "float func(float x, float y, __global float* t, float b) "
               "{ return x + y + t[1] + b; }",
           table, 1.5f);
  Vector<float> a = p(in);
  EXPECT_TRUE(p.lastRunFused());

  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], in[i] * 2.5f + ys[i] + 1.25f + 1.5f) << i;
  }
}

TEST_P(FusionP, HelperFunctionsOfDifferentStagesDoNotCollide) {
  // Both stages define a helper named `twice` with different meanings; the
  // per-stage renaming must keep them apart in the merged kernel.
  Vector<float> in = randomVector(256, 43);
  Pipeline<float> p;
  p.map("float twice(float x) { return 2.0f * x; }\n"
        "float func(float x) { return twice(x); }")
      .map("float twice(float x) { return x + x + 1.0f; }\n"
           "float func(float x) { return twice(x); }");
  Vector<float> a = p(in);
  EXPECT_TRUE(p.lastRunFused());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], 2.0f * in[i] + 2.0f * in[i] + 1.0f) << i;
  }
}

// --- fallback triggers -------------------------------------------------------

TEST_P(FusionP, ObservedIntermediateForcesUnfusedAndMaterializes) {
  Vector<float> in = randomVector(400, 47);
  Vector<float> mid(in.size());

  Pipeline<float> p;
  p.map(kSquare).observe(mid).map(kHalf);
  Vector<float> out = p(in);
  EXPECT_FALSE(p.lastRunFused()) << "observed intermediates must disable fusion";

  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(mid[i], in[i] * in[i] + 1.0f) << i;
    EXPECT_FLOAT_EQ(out[i], (in[i] * in[i] + 1.0f) * 0.5f) << i;
  }
}

TEST_P(FusionP, MismatchedZipDistributionFallsBack) {
  Vector<float> in = randomVector(600, 53);
  in.setDistribution(Distribution::block());
  Vector<float> ys = randomVector(600, 59);
  ys.setDistribution(Distribution::single(0));

  Pipeline<float> p;
  p.map(kSquare).zip(ys, kAdd2);
  Vector<float> out = p(in);
  EXPECT_FALSE(p.lastRunFused())
      << "a zip input with a different distribution must disable fusion";
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], in[i] * in[i] + 1.0f + ys[i]) << i;
  }
}

// --- trace semantics ---------------------------------------------------------

TEST(FusionTrace, SingleFusedStagePerDeviceAndNoIntermediateTransfers) {
  init(sim::SystemConfig::teslaS1070(2));
  Vector<float> in = randomVector(1000, 61);
  Vector<float> ys = randomVector(1000, 67);

  Pipeline<float> p;
  p.map(kSquare).zip(ys, kAdd2);

  trace::clear();
  trace::enable();
  Vector<float> out = p(in);
  EXPECT_TRUE(p.lastRunFused());
  const float sink = out[0];  // forces the output download
  (void)sink;
  trace::disable();

  int fusedRecords = 0, kernelRecords = 0, uploads = 0, downloads = 0;
  for (const auto& r : trace::snapshot()) {
    fusedRecords += r.kind == trace::Record::Kind::Fused;
    kernelRecords += r.kind == trace::Record::Kind::Kernel;
    uploads += r.kind == trace::Record::Kind::Upload;
    downloads += r.kind == trace::Record::Kind::Download;
    if (r.kind == trace::Record::Kind::Fused) {
      EXPECT_NE(r.name.find("fused x2"), std::string::npos) << r.name;
    }
  }
  EXPECT_EQ(fusedRecords, 2) << "one fused kernel per device";
  EXPECT_EQ(kernelRecords, 0) << "no per-stage kernels on the fused path";
  EXPECT_EQ(uploads, 4) << "only the two inputs upload (2 vectors x 2 devices)";
  EXPECT_EQ(downloads, 2) << "only the final output downloads";
  trace::clear();
  terminate();
}

TEST(FusionTrace, UnfusedFallbackLaunchesPerStageKernels) {
  init(sim::SystemConfig::teslaS1070(2));
  Vector<float> in = randomVector(1000, 71);

  Pipeline<float> p;
  p.map(kSquare).map(kHalf).forceUnfused();

  trace::clear();
  trace::enable();
  Vector<float> out = p(in);
  (void)out;
  trace::disable();

  int fusedRecords = 0, kernelRecords = 0;
  for (const auto& r : trace::snapshot()) {
    fusedRecords += r.kind == trace::Record::Kind::Fused;
    kernelRecords += r.kind == trace::Record::Kind::Kernel;
  }
  EXPECT_EQ(fusedRecords, 0);
  EXPECT_EQ(kernelRecords, 4) << "two stages x two devices";
  trace::clear();
  terminate();
}

// --- scheduler cost model ----------------------------------------------------

TEST(FusionSched, PipelineCostSumsStageCosts) {
  const std::vector<std::string> stages = {kSquare, kHalf};
  const auto s0 = sched::measureUserFunction(kSquare);
  const auto s1 = sched::measureUserFunction(kHalf);
  const auto sum = sched::measurePipelineCost(stages);
  EXPECT_DOUBLE_EQ(sum.instructionsPerElement,
                   s0.instructionsPerElement + s1.instructionsPerElement);
}

TEST(FusionSched, AutoScheduleAcceptsPipelines) {
  init(sim::SystemConfig::teslaS1070(2));
  Pipeline<float> p;
  p.map(kSquare).map(kHalf);
  sched::autoSchedule(p.stageSources());
  Vector<float> in = randomVector(300, 73);
  Vector<float> out = p(in);
  EXPECT_TRUE(p.lastRunFused());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], (in[i] * in[i] + 1.0f) * 0.5f) << i;
  }
  terminate();
}

// --- regression: 64-bit scalar additional arguments --------------------------

TEST(ExtraArgRegression, Int64ScalarExtraKeepsValuesBeyondInt32) {
  init(sim::SystemConfig::teslaS1070(2));
  const std::int64_t big = 3000000000LL;  // > INT32_MAX
  ASSERT_GT(big, static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::max()));

  Map<int> probe("int func(int x, long k) {\n"
                 "  if (k == 3000000000l) return x + 1;\n"
                 "  return x - 1;\n"
                 "}");
  Vector<int> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  Vector<int> out = probe(v, big);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) + 1)
        << "the 64-bit extra was truncated before reaching the kernel";
  }
  terminate();
}

TEST(ExtraArgRegression, Uint64ScalarExtraAndLongArithmetic) {
  init(sim::SystemConfig::teslaS1070(1));
  const std::uint64_t big = 10000000000ULL;  // needs > 32 bits

  Map<int> probe("int func(int x, ulong k) {\n"
                 "  ulong half = k / 2ul;\n"
                 "  if (half == 5000000000ul) return x * 2;\n"
                 "  return -1;\n"
                 "}");
  Vector<int> v(16);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  Vector<int> out = probe(v, big);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 2 * static_cast<int>(i)) << i;
  }
  terminate();
}

TEST(ExtraArgRegression, Int64ReduceExtraSurvivesHostFold) {
  init(sim::SystemConfig::teslaS1070(2));
  // The extra selects a branch both on the device and in the host fold.
  Reduce<int> sum("int func(int a, int b, long k) {\n"
                  "  if (k == 4000000000l) return a + b;\n"
                  "  return 0;\n"
                  "}");
  Vector<int> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 1;
  EXPECT_EQ(sum(v, static_cast<std::int64_t>(4000000000LL)), 1000);
  terminate();
}

// --- regression: stale partition weights -------------------------------------

TEST(WeightsRegression, ShortStaleWeightsFallBackToEvenSplit) {
  init(sim::SystemConfig::teslaS1070(4));
  // Weights for a 2-device machine installed on a 4-device one (e.g. kept
  // from a previous configuration): they must be ignored, not crash the
  // partitioner.
  setPartitionWeights({0.7, 0.3});

  Map<int> inc("int func(int x) { return x + 1; }");
  Vector<int> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  Vector<int> out = inc(v);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) + 1) << i;
  }
  terminate();
}

TEST(WeightsRegression, WeightsRestingOnDeadDevicesFallBack) {
  init(sim::SystemConfig::teslaS1070(4));
  // All weight on device 3, which dies on its first command.  The survivors
  // carry zero weight, so the runtime must fall back to the unweighted
  // split instead of crashing with an empty partition.
  setPartitionWeights({0.0, 0.0, 0.0, 1.0});
  sim::FaultPlan plan;
  plan.killAfterCommands(3, 0);
  setFaultPlan(std::move(plan));

  Map<int> inc("int func(int x) { return x + 1; }");
  Vector<int> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  Vector<int> out = inc(v);
  EXPECT_EQ(aliveDeviceCount(), 3);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) + 1) << i;
  }
  terminate();
}

TEST(WeightsRegression, FusedChainSurvivesDeviceDeathUnderWeights) {
  init(sim::SystemConfig::teslaS1070(4));
  setPartitionWeights({0.4, 0.3, 0.2, 0.1});
  sim::FaultPlan plan;
  plan.killAfterCommands(2, 1);
  setFaultPlan(std::move(plan));

  Vector<float> in = randomVector(2000, 79);
  Pipeline<float> p;
  p.map(kSquare).map(kHalf);
  Vector<float> out = p(in);
  EXPECT_EQ(aliveDeviceCount(), 3);
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_FLOAT_EQ(out[i], (in[i] * in[i] + 1.0f) * 0.5f) << i;
  }
  terminate();
}

// --- regression: conflicting extra-argument typedefs -------------------------

struct PairA {
  float a = 0.0f;
  float b = 0.0f;
};
struct PairB {
  float a = 0.0f;
  float b = 0.0f;
  float c = 0.0f;
};

void registerPairsOnce() {
  static const bool done = [] {
    registerKernelType<PairA>("Pair", "typedef struct { float a; float b; } Pair;");
    registerKernelType<PairB>("Pair", "typedef struct { float a; float b; float c; } Pair;");
    return true;
  }();
  (void)done;
}

TEST(TypedefRegression, ConflictingDefinitionsUnderOneNameThrow) {
  registerPairsOnce();
  init(sim::SystemConfig::teslaS1070(1));
  Vector<PairA> pa(4);
  Vector<PairB> pb(4);
  pa.setDistribution(Distribution::copy());
  pb.setDistribution(Distribution::copy());

  Map<float> f("float func(float x, __global Pair* p, __global Pair* q) { return x; }");
  Vector<float> v(8);
  EXPECT_THROW(f(v, pa, pb), UsageError)
      << "two extras registering the same struct name with different layouts "
         "must be rejected, not silently shadowed";
  terminate();
}

TEST(TypedefRegression, SharedTypedefAcrossFusedStagesEmittedOnce) {
  registerPairsOnce();
  init(sim::SystemConfig::teslaS1070(2));
  Vector<PairA> pa(4);
  PairA p0;
  p0.a = 1.5f;
  p0.b = 2.5f;
  pa[0] = p0;
  pa.setDistribution(Distribution::copy());

  // Both stages take the same struct-typed extra: the fused program must
  // contain exactly one Pair typedef (a duplicate would fail to compile).
  Pipeline<float> p;
  p.map("float func(float x, __global Pair* p) { return x + p[0].a; }", pa)
      .map("float func(float x, __global Pair* p) { return x + p[0].b; }", pa);
  Vector<float> in = randomVector(64, 83);
  Vector<float> out = p(in);
  EXPECT_TRUE(p.lastRunFused());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], in[i] + 1.5f + 2.5f) << i;
  }
  terminate();
}

}  // namespace
