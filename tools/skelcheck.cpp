// skelcheck — randomized differential state-machine testing for SkelCL.
//
// Runs seeded random op-sequence programs in lockstep against the live
// runtime and a pure host-side reference model (see docs/TESTING.md).
//
//   skelcheck --smoke                 fixed seed sweep (CI gate, <30s)
//   skelcheck --seed N [--ops K]      one seeded run, shrink on divergence
//   skelcheck --sweep FIRST COUNT     seed range; writes shrunk .skelcheck
//                                     repros to --out DIR (default .)
//   skelcheck --replay FILE           re-run a .skelcheck repro
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/generator.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"

namespace {

using namespace skelcl::check;

int usage() {
  std::fprintf(stderr,
               "usage: skelcheck --smoke\n"
               "       skelcheck --seed N [--ops K]\n"
               "       skelcheck --sweep FIRST COUNT [--ops K] [--out DIR]\n"
               "       skelcheck --replay FILE\n");
  return 2;
}

/// Run one seed; on divergence shrink and (optionally) write the repro.
/// Returns true when the seed passed.
bool runSeed(std::uint64_t seed, int numOps, const std::string& outDir, bool shrinkIt) {
  const Program prog = generate(seed, numOps);
  const RunResult res = runProgram(prog);
  if (res.ok) return true;

  std::fprintf(stderr, "seed %llu DIVERGED: %s\n",
               static_cast<unsigned long long>(seed), res.message.c_str());
  Program repro = prog;
  if (shrinkIt) {
    std::fprintf(stderr, "shrinking (%zu ops)...\n", prog.ops.size());
    repro = shrink(prog, [](const Program& cand) { return !runProgram(cand).ok; });
    const RunResult small = runProgram(repro);
    std::fprintf(stderr, "shrunk to %zu ops: %s\n", repro.ops.size(),
                 small.message.c_str());
  }
  const std::string path = outDir + "/seed-" + std::to_string(seed) + ".skelcheck";
  std::ofstream out(path);
  if (out) {
    out << serialize(repro);
    std::fprintf(stderr, "repro written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s; repro follows:\n%s", path.c_str(),
                 serialize(repro).c_str());
  }
  return false;
}

/// The CI smoke gate: 64 fixed seeds x 40 ops.  Seeds 0..63 cover, by
/// construction of generate(), all of {1,2,4} devices, both element types
/// and both VM pipelines; the op mix includes fusion and fault injection.
int smoke() {
  int failures = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    if (!runSeed(seed, 40, ".", /*shrinkIt=*/true)) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "skelcheck --smoke: %d/64 seeds diverged\n", failures);
    return 1;
  }
  std::printf("skelcheck --smoke: 64 seeds, 0 divergences\n");
  return 0;
}

int replay(const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "skelcheck: cannot open %s\n", file.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Program prog;
  try {
    prog = parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "skelcheck: %s\n", e.what());
    return 2;
  }
  const RunResult res = runProgram(prog);
  if (!res.ok) {
    std::fprintf(stderr, "replay DIVERGED: %s\n", res.message.c_str());
    return 1;
  }
  std::printf("replay passed (%zu ops)\n", prog.ops.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0, sweepFirst = 0;
  int numOps = 60, sweepCount = 0;
  std::string outDir = ".", replayFile;
  bool haveSeed = false, doSmoke = false, doSweep = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "skelcheck: %s needs an argument\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      doSmoke = true;
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
      haveSeed = true;
    } else if (arg == "--ops") {
      numOps = std::atoi(next());
    } else if (arg == "--sweep") {
      sweepFirst = std::strtoull(next(), nullptr, 10);
      sweepCount = std::atoi(next());
      doSweep = true;
    } else if (arg == "--out") {
      outDir = next();
    } else if (arg == "--replay") {
      replayFile = next();
    } else {
      return usage();
    }
  }

  if (doSmoke) return smoke();
  if (!replayFile.empty()) return replay(replayFile);
  if (doSweep) {
    int failures = 0;
    for (int k = 0; k < sweepCount; ++k) {
      if (!runSeed(sweepFirst + static_cast<std::uint64_t>(k), numOps, outDir, true)) {
        ++failures;
      }
    }
    std::printf("skelcheck --sweep: %d seeds, %d divergences\n", sweepCount, failures);
    return failures > 0 ? 1 : 0;
  }
  if (haveSeed) {
    return runSeed(seed, numOps, outDir, true) ? 0 : 1;
  }
  return usage();
}
