// kcc — kernel-language compiler driver (developer tool).
//
//   kcc FILE.cl            compile; print diagnostics or "ok"
//   kcc -d FILE.cl         compile and disassemble every function
//   kcc -p FILE.cl         dump the packed (16-byte) dispatch encoding
//   kcc -r FILE.cl         dump the Insn IR right after the rewrite pass
//                          (before peephole): hoisted code shows as ;hoisted
//   kcc -O<tier> ...       compile at tier 0/1/2 instead of the default
//   kcc -e 'EXPR' ARGS...  compile `double f(double...)`-style one-liners and
//                          evaluate: kcc -e 'sqrt(x*x + 1.0f)' 3
//
// Useful for debugging skeleton source generation: pipe the source SkelCL
// generates into kcc -d to see exactly what the device will execute.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "kernelc/diagnostics.hpp"
#include "kernelc/disasm.hpp"
#include "kernelc/program.hpp"
#include "kernelc/rewrite.hpp"

namespace {

std::string readFile(const char* path) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "kcc: cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int evalExpression(const std::string& expr, const std::vector<double>& args) {
  // Wrap the expression in a function with parameters x, y, z, ...
  std::string params;
  const char* names[] = {"x", "y", "z", "w"};
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) params += ", ";
    params += std::string("float ") + names[i];
  }
  const std::string source = "float f(" + params + ") { return " + expr + "; }";
  const auto program = skelcl::kc::compileProgram(source);
  skelcl::kc::Vm vm(*program, {});
  std::vector<skelcl::kc::Slot> slots;
  for (double a : args) slots.push_back(skelcl::kc::Slot::fromFloat(a));
  const auto result = vm.callFunction(program->findFunction("f"), slots);
  std::printf("%g\n", result.f);
  std::printf("(%llu instructions)\n",
              static_cast<unsigned long long>(vm.instructionsExecuted()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool disassemble = false;
  bool packed = false;
  bool postRewrite = false;
  int tier = -1;  // -1: keep the SKELCL_KC_OPT / built-in default
  int argi = 1;
  while (argi < argc && argv[argi][0] == '-' && std::strcmp(argv[argi], "-") != 0 &&
         std::strcmp(argv[argi], "-e") != 0) {
    if (std::strcmp(argv[argi], "-d") == 0) {
      disassemble = true;
    } else if (std::strcmp(argv[argi], "-p") == 0) {
      packed = true;
    } else if (std::strcmp(argv[argi], "-r") == 0) {
      postRewrite = true;
    } else if (std::strncmp(argv[argi], "-O", 2) == 0 && argv[argi][2] >= '0' &&
               argv[argi][2] <= '2' && argv[argi][3] == '\0') {
      tier = argv[argi][2] - '0';
    } else {
      std::fprintf(stderr, "kcc: unknown flag %s\n", argv[argi]);
      return 2;
    }
    ++argi;
  }
  if (argi < argc && std::strcmp(argv[argi], "-e") == 0) {
    if (argi + 1 >= argc) {
      std::fprintf(stderr, "kcc: -e needs an expression\n");
      return 2;
    }
    std::vector<double> args;
    for (int i = argi + 2; i < argc; ++i) args.push_back(std::atof(argv[i]));
    try {
      return evalExpression(argv[argi + 1], args);
    } catch (const skelcl::kc::CompileError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  if (argi >= argc) {
    std::fprintf(stderr,
                 "usage: kcc [-d|-p|-r] [-O<0|1|2>] FILE.cl | kcc -e 'EXPR' [args...]\n"
                 "       (FILE may be '-' for stdin)\n");
    return 2;
  }

  const std::string source = readFile(argv[argi]);
  try {
    if (postRewrite) {
      // Compile the naive IR (tier 0) and run the rewrite pass alone, so the
      // dump shows its effect before peephole fusion obscures the windows.
      const auto program =
          skelcl::kc::compileProgram(source, skelcl::kc::CompileOptions{0});
      for (skelcl::kc::FunctionCode fn : program->functions) {
        const int applied = skelcl::kc::rewriteOptimize(fn);
        std::printf("; %d rewrite(s)\n", applied);
        std::fputs(skelcl::kc::disassemble(fn).c_str(), stdout);
        std::fputs("\n", stdout);
      }
      return 0;
    }
    const auto program =
        tier >= 0 ? skelcl::kc::compileProgram(source, skelcl::kc::CompileOptions{tier})
                  : skelcl::kc::compileProgram(source);
    if (disassemble || packed) {
      for (const auto& fn : program->functions) {
        std::fputs((packed ? skelcl::kc::disassemblePacked(fn)
                           : skelcl::kc::disassemble(fn))
                       .c_str(),
                   stdout);
        std::fputs("\n", stdout);
      }
    } else {
      std::printf("ok: %zu function(s), %llu tokens\n", program->functions.size(),
                  static_cast<unsigned long long>(program->complexity));
    }
    return 0;
  } catch (const skelcl::kc::CompileError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
