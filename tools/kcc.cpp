// kcc — kernel-language compiler driver (developer tool).
//
//   kcc FILE.cl            compile; print diagnostics or "ok"
//   kcc -d FILE.cl         compile and disassemble every function
//   kcc -p FILE.cl         dump the packed (16-byte) dispatch encoding
//   kcc -e 'EXPR' ARGS...  compile `double f(double...)`-style one-liners and
//                          evaluate: kcc -e 'sqrt(x*x + 1.0f)' 3
//
// Useful for debugging skeleton source generation: pipe the source SkelCL
// generates into kcc -d to see exactly what the device will execute.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "kernelc/diagnostics.hpp"
#include "kernelc/disasm.hpp"
#include "kernelc/program.hpp"

namespace {

std::string readFile(const char* path) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "kcc: cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int evalExpression(const std::string& expr, const std::vector<double>& args) {
  // Wrap the expression in a function with parameters x, y, z, ...
  std::string params;
  const char* names[] = {"x", "y", "z", "w"};
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) params += ", ";
    params += std::string("float ") + names[i];
  }
  const std::string source = "float f(" + params + ") { return " + expr + "; }";
  const auto program = skelcl::kc::compileProgram(source);
  skelcl::kc::Vm vm(*program, {});
  std::vector<skelcl::kc::Slot> slots;
  for (double a : args) slots.push_back(skelcl::kc::Slot::fromFloat(a));
  const auto result = vm.callFunction(program->findFunction("f"), slots);
  std::printf("%g\n", result.f);
  std::printf("(%llu instructions)\n",
              static_cast<unsigned long long>(vm.instructionsExecuted()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool disassemble = false;
  bool packed = false;
  int argi = 1;
  if (argi < argc && std::strcmp(argv[argi], "-d") == 0) {
    disassemble = true;
    ++argi;
  } else if (argi < argc && std::strcmp(argv[argi], "-p") == 0) {
    packed = true;
    ++argi;
  }
  if (argi < argc && std::strcmp(argv[argi], "-e") == 0) {
    if (argi + 1 >= argc) {
      std::fprintf(stderr, "kcc: -e needs an expression\n");
      return 2;
    }
    std::vector<double> args;
    for (int i = argi + 2; i < argc; ++i) args.push_back(std::atof(argv[i]));
    try {
      return evalExpression(argv[argi + 1], args);
    } catch (const skelcl::kc::CompileError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  if (argi >= argc) {
    std::fprintf(stderr,
                 "usage: kcc [-d|-p] FILE.cl | kcc -e 'EXPR' [args...]\n"
                 "       (FILE may be '-' for stdin)\n");
    return 2;
  }

  const std::string source = readFile(argv[argi]);
  try {
    const auto program = skelcl::kc::compileProgram(source);
    if (disassemble || packed) {
      for (const auto& fn : program->functions) {
        std::fputs((packed ? skelcl::kc::disassemblePacked(fn)
                           : skelcl::kc::disassemble(fn))
                       .c_str(),
                   stdout);
        std::fputs("\n", stdout);
      }
    } else {
      std::printf("ok: %zu function(s), %llu tokens\n", program->functions.size(),
                  static_cast<unsigned long long>(program->complexity));
    }
    return 0;
  } catch (const skelcl::kc::CompileError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
